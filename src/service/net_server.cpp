#include "service/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace mobitherm::service {

NetServer::NetServer(SimServer& server, NetServerConfig config)
    : server_(server), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw util::ConfigError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::ConfigError("invalid listen host: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::ConfigError("bind/listen " + config_.host + ":" +
                            std::to_string(config_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw util::ConfigError(std::string("epoll/eventfd: ") +
                            std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    const std::string why = std::strerror(errno);
    ::close(epoll_fd_);
    ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw util::ConfigError("epoll_ctl(listen): " + why);
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const std::string why = std::strerror(errno);
    ::close(epoll_fd_);
    ::close(wake_fd_);
    ::close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    throw util::ConfigError("epoll_ctl(wake): " + why);
  }
}

NetServer::~NetServer() {
  // Safe to claim the loop role here: run() has returned (the contract is
  // that the loop thread is joined before destruction), so this thread is
  // the only one that can touch connection state.
  util::RoleGuard guard(loop_role_);
  close_all();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

NetServer::Counters NetServer::counters() const {
  Counters c;
  c.connections_accepted = accepted_.load(std::memory_order_relaxed);
  c.connections_closed = closed_.load(std::memory_order_relaxed);
  c.connections_refused = refused_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.oversized_lines = oversized_.load(std::memory_order_relaxed);
  c.backpressure_stalls = stalls_.load(std::memory_order_relaxed);
  c.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  c.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return c;
}

void NetServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Wake the epoll wait; if the loop is not running the token is simply
  // consumed on the next run() entry.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

// LOCKCHECK: event-loop
void NetServer::run() {
  util::RoleGuard guard(loop_role_);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire) &&
         !server_.shutdown_requested()) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t token = 0;
        // LOCKCHECK: ok(wake_fd_ is a nonblocking eventfd; read never stalls)
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &token, sizeof(token));
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& conn = *it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) && !(mask & EPOLLIN)) {
        close_connection(fd);
        continue;
      }
      if (mask & EPOLLOUT) {
        if (!flush(conn)) continue;
        if (conn.peer_closed && conn.out.empty()) {
          close_connection(fd);
          continue;
        }
        update_interest(conn);
      }
      if ((mask & EPOLLIN) && !conn.reading_paused) {
        if (!read_ready(conn)) continue;
      }
      if (server_.shutdown_requested()) break;
    }
  }
  // Best-effort final drain so the `shutdown` acknowledgement (and any
  // responses queued behind it) reach their clients before teardown.
  for (auto& [fd, conn] : connections_) {
    (void)fd;
    flush(*conn);
  }
  close_all();
}

void NetServer::accept_ready() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error; epoll will re-arm
    if (connections_.size() >= config_.max_connections) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.send_buffer_bytes,
                   sizeof(config_.send_buffer_bytes));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      // An unregistered connection would never see another event: it
      // cannot be served or closed later, so the fd must be released now.
      refused_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool NetServer::read_ready(Connection& conn) {
  char buf[64 * 1024];
  while (!conn.reading_paused) {
    // LOCKCHECK: ok(conn.fd is SOCK_NONBLOCK; recv returns EAGAIN, not stalls)
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      conn.in.append(buf, static_cast<std::size_t>(n));
      handle_buffered_lines(conn);
      if (server_.shutdown_requested()) break;
      // Backpressure check between reads, not just once per event: a
      // pipelining client can fill the write budget from a single chunk
      // of requests, and the stall must land before the next recv.
      if (conn.out.size() > config_.write_buffer_limit) {
        if (!flush(conn)) return false;
        if (conn.out.size() > config_.write_buffer_limit) {
          conn.reading_paused = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      continue;
    }
    if (n == 0) {
      // Half-close: the peer is done sending but may still be reading
      // responses. Handle what is buffered, then linger until drained.
      conn.peer_closed = true;
      handle_buffered_lines(conn);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_connection(conn.fd);
    return false;
  }
  if (!flush(conn)) return false;
  if (conn.peer_closed && conn.out.empty()) {
    close_connection(conn.fd);
    return false;
  }
  update_interest(conn);
  return true;
}

void NetServer::handle_buffered_lines(Connection& conn) {
  std::size_t start = 0;
  while (start < conn.in.size()) {
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    if (conn.discarding) {
      // Tail of an oversized line already answered; swallow it.
      conn.discarding = false;
      start = nl + 1;
      continue;
    }
    std::size_t end = nl;
    if (end > start && conn.in[end - 1] == '\r') --end;
    const std::string line = conn.in.substr(start, end - start);
    start = nl + 1;
    if (!line.empty()) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      if (line.size() > kMaxLineBytes) {
        oversized_.fetch_add(1, std::memory_order_relaxed);
      }
      conn.out += server_.handle_line(line);
      conn.out += '\n';
      if (server_.shutdown_requested()) {
        conn.in.clear();
        return;
      }
    }
  }
  conn.in.erase(0, start);
  if (conn.discarding) {
    conn.in.clear();
  } else if (conn.in.size() > kMaxLineBytes) {
    // A partial line has already outgrown the cap: answer now with the
    // exact oversized_line response stdin mode produces (routed through
    // handle_line so fault-injection sequencing stays identical), then
    // discard until the line's eventual newline.
    oversized_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    conn.out += server_.handle_line(std::string(kMaxLineBytes + 1, ' '));
    conn.out += '\n';
    conn.in.clear();
    conn.discarding = true;
  }
}

bool NetServer::flush(Connection& conn) {
  std::size_t written = 0;
  while (written < conn.out.size()) {
    // LOCKCHECK: ok(conn.fd is SOCK_NONBLOCK; send returns EAGAIN, not stalls)
    const ssize_t n = ::send(conn.fd, conn.out.data() + written,
                             conn.out.size() - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.fd);
    return false;
  }
  if (written > 0) {
    bytes_out_.fetch_add(static_cast<std::uint64_t>(written),
                         std::memory_order_relaxed);
    conn.out.erase(0, written);
  }
  return true;
}

void NetServer::update_interest(Connection& conn) {
  // Backpressure: park EPOLLIN while the unflushed responses exceed the
  // limit; resume at half the limit so a draining client does not flap
  // between states on every write.
  if (!conn.reading_paused && conn.out.size() > config_.write_buffer_limit) {
    conn.reading_paused = true;
    stalls_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn.reading_paused &&
             conn.out.size() <= config_.write_buffer_limit / 2) {
    conn.reading_paused = false;
  }
  epoll_event ev{};
  ev.events = 0;
  if (!conn.reading_paused && !conn.peer_closed) ev.events |= EPOLLIN;
  if (!conn.out.empty()) ev.events |= EPOLLOUT;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  closed_.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::close_all() {
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    closed_.fetch_add(1, std::memory_order_relaxed);
  }
  connections_.clear();
}

}  // namespace mobitherm::service
