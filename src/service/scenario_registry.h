// Named, parameterized simulation scenarios — the single source of truth
// for the paper's workload wiring.
//
// Every consumer used to hand-wire an Engine per run (benches, examples,
// tests). The registry names each scenario family once: a request is a
// small value object {scenario, app, policy, model, overrides, duration,
// seed}, the registry resolves it against the scenario's defaults into a
// *canonical* request, and the canonical request deterministically maps to
// a fully wired Engine. Because every run is bit-deterministic (PR 1-3),
// the canonical request string is also the service layer's cache key:
// identical canonical requests produce byte-identical results, so they can
// be memoized (service/result_cache.h).
//
// Apps come from two catalogs: the built-in presets (workload/presets.h,
// addressed by bare name) and attached workload packs (workload/pack.h,
// addressed as "<pack>/<app>"). Pack-backed requests embed the pack's
// content hash in the canonical key, so editing a pack invalidates every
// cached result computed from it. The power/leakage physics is selected by
// SimRequest::power_model against power::ModelRegistry, and the
// thermal-runaway guard threshold is re-derived per model
// (runaway_guard_temp_k).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "util/hash.h"
#include "workload/app.h"
#include "workload/pack.h"

namespace mobitherm::service {

/// Tag mixed into every canonical request key. Bump whenever a change
/// alters simulation semantics (traces/metrics for a fixed request), so a
/// stale cache can never serve results computed by different code.
inline constexpr const char* kSimCodeVersion = "mobitherm-sim-v5";

/// A parameterized simulation request. Field semantics are interpreted by
/// the scenario named in `scenario`; sentinel values (empty strings,
/// negative numbers) mean "use the scenario default" and are replaced by
/// ScenarioRegistry::resolve().
struct SimRequest {
  std::string scenario;        // registry key: "nexus" | "odroid" | custom
  std::string app;             // preset name ("paperio") or "<pack>/<app>"
  std::string policy;          // scenario policy ("throttled", "default"...)
  /// Power/leakage model strategy (power::ModelRegistry name); empty =
  /// "baseline", the paper's BSIM calibration.
  std::string power_model;
  bool with_bml = false;       // odroid: add the BML background task
  double duration_s = -1.0;    // simulated seconds; <0 = scenario default
  double initial_temp_c = kUnsetTemp;  // device temperature at t=0
  std::uint64_t seed = 42;
  /// Workload-shape overrides; only meaningful for parameterized apps
  /// (threedmark phase length, nenamark levels). resolve() normalizes
  /// them back to the sentinel for apps that ignore them, keeping the
  /// canonical key honest.
  int app_levels = -1;
  double app_phase_s = -1.0;

  static constexpr double kUnsetTemp = -1.0e9;
};

/// FNV-1a 64-bit hash of a canonical request string (the result-cache key
/// and the shard router's partition input). Forwards to the one audited
/// implementation in util/hash.h.
inline std::uint64_t fnv1a64(const std::string& text) {
  return util::fnv1a64(text);
}

/// Look up a built-in workload preset by registry name ("paperio",
/// "threedmark", ...). `levels`/`phase_s` parameterize the apps that accept
/// them and are ignored (when negative) otherwise. Throws util::ConfigError
/// on unknown names. Pack-qualified names are resolved by the registry
/// (ScenarioRegistry::app_spec), not here.
workload::AppSpec workload_by_name(const std::string& name, int levels = -1,
                                   double phase_s = -1.0);

/// True if the named workload takes the levels/phase_s overrides.
bool workload_is_parameterized(const std::string& name);

/// Registry workload names for the five Table I apps, paper order.
const std::vector<std::string>& nexus_app_names();

class ScenarioRegistry {
 public:
  struct Entry {
    std::string name;
    std::string description;
    /// Platform the scenario wires ("snapdragon810", "exynos5422", ...);
    /// informational and part of the canonical key documentation.
    std::string platform;
    double default_duration_s = 0.0;
    double default_initial_temp_c = 0.0;
    std::string default_app;
    std::string default_policy;
    /// Allowed policy strings, for validation and the `scenarios` op.
    std::vector<std::string> policies;
    /// Built-in apps this scenario advertises (scenario-matrix harness,
    /// `scenarios` op). Any valid workload name is *accepted*; this list
    /// is what gets enumerated.
    std::vector<std::string> apps;
    /// Build a fully wired engine from a *resolved* request and its
    /// resolved app spec (built-in preset or pack app). Must be pure:
    /// identical requests yield engines that produce bit-identical runs.
    /// Called concurrently by the service worker pool.
    std::function<std::unique_ptr<sim::Engine>(
        const SimRequest&, const workload::AppSpec&)>
        factory;
  };

  /// Register (or replace) a scenario entry. Throws on empty name or
  /// missing factory.
  void add(Entry entry);

  bool has(const std::string& name) const;
  const Entry& at(const std::string& name) const;  // throws on unknown
  std::vector<std::string> names() const;          // sorted
  std::size_t size() const { return entries_.size(); }

  /// Attach a pack set; "<pack>/<app>" request apps resolve against it.
  /// Copies of the registry made afterwards share the same (immutable)
  /// packs.
  void attach_packs(std::shared_ptr<const workload::PackSet> packs);
  const workload::PackSet* packs() const { return packs_.get(); }

  /// Fill scenario defaults into every sentinel field, validate the app,
  /// policy and power-model names, and normalize inapplicable overrides.
  /// The result is the canonical request: resolve(resolve(r)) ==
  /// resolve(r). Throws util::ConfigError on unknown
  /// scenario/app/policy/model.
  SimRequest resolve(const SimRequest& request) const;

  /// The app spec a *resolved* request simulates: a built-in preset or an
  /// attached pack app. Throws util::ConfigError on unknown names.
  workload::AppSpec app_spec(const SimRequest& resolved) const;

  /// Every app name the scenario-matrix harness should enumerate for
  /// `scenario`: the entry's built-in list plus every attached pack app
  /// (qualified), in listing order.
  std::vector<std::string> apps_for(const std::string& scenario) const;

  /// Canonical key string of a request (resolves first). Two requests
  /// have equal keys iff the registry treats them identically; the key
  /// embeds kSimCodeVersion — and, for pack apps, the pack content hash —
  /// so cached results never outlive the code (or pack) that computed
  /// them.
  std::string canonical_key(const SimRequest& request) const;

  /// FNV-1a hash of canonical_key(); the result-cache key.
  std::uint64_t request_hash(const SimRequest& request) const;

  /// Resolve and build the engine for `request`.
  std::unique_ptr<sim::Engine> make_engine(const SimRequest& request) const;

  /// Thermal-runaway guard threshold (K) for `request`, wired to the
  /// active power model: the baseline model keeps the service-configured
  /// `config_guard_c` (Sec. IV-A calibration), alternate models clamp it
  /// to their own re-derived point of no return
  /// (stability::model_no_return_temp_k at zero dynamic power). Callers
  /// treat config_guard_c <= 0 as "guard disabled" before asking.
  double runaway_guard_temp_k(const SimRequest& request,
                              double config_guard_c) const;

  /// The paper's scenario families: "nexus" (Sec. III, Snapdragon 810)
  /// and "odroid" (Sec. IV-C, Exynos 5422).
  static ScenarioRegistry standard();

 private:
  std::map<std::string, Entry> entries_;
  std::shared_ptr<const workload::PackSet> packs_;
};

/// Shared immutable standard registry (constructed on first use).
const ScenarioRegistry& standard_registry();

}  // namespace mobitherm::service
