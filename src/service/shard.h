// ShardedService: N share-nothing SimService shards behind one id space.
//
// The fleet front-end (net_server.h) wants to absorb many concurrent
// clients without the single service mutex and the single ResultCache
// becoming the contention point. Work is partitioned by canonical request
// key:
//
//     shard = util::fnv1a64(canonical_key) % shards
//
// Routing is a pure function of the canonical key — the same request lands
// on the same shard on every run, across processes and across restarts —
// so each shard can own its ResultCache + stale side-store, its job queue
// and its worker pool outright, with no cross-shard locks anywhere: a
// request's cache entry lives on exactly one shard, and the byte-identity
// guarantee (same canonical request -> same payload bytes) holds shard by
// shard exactly as it does for a single pool.
//
// Job ids are globalized as `local_id * shards + shard`, so the shard of
// any id is recoverable as `id % shards` and id-addressed ops (status,
// result, cancel, wait) route without a directory. With shards == 1 the
// mapping is the identity: the stdin pipe server, every existing smoke
// test and the fault-injection path run byte-for-byte unchanged through a
// 1-shard ShardedService.
//
// ServiceConfig is interpreted *per shard*: `workers`, `queue_capacity`
// and `cache_capacity` each apply to every shard (S shards x W workers
// total threads). A shared FaultPlan pointer is passed through to every
// shard; its decisions stay pure in (seed, site, key), so the injected
// schedule for a given request stream does not depend on the shard count.
//
// Locking: ShardedService itself holds no mutex — `shards_` is immutable
// after construction and every method is a pure route-then-delegate, so
// thread-safety annotations live entirely inside SimService/ResultCache.
// The lock hierarchy (DESIGN.md section 15) is therefore per shard:
// shard k's SimService::mutex_ before shard k's ResultCache::mutex_, and
// never any lock from another shard.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "service/scenario_registry.h"
#include "service/service.h"

namespace mobitherm::service {

class ShardedService : public ServiceApi {
 public:
  /// Builds `shards` independent SimService pools, each configured with
  /// `config` and a copy of `registry`. Throws util::ConfigError when
  /// `shards` is 0.
  ShardedService(const ScenarioRegistry& registry, const ServiceConfig& config,
                 unsigned shards);

  unsigned shards() const { return static_cast<unsigned>(shards_.size()); }

  /// The shard owning a canonical-key hash: fnv1a64(key) % shards. Pure —
  /// same key, same shard, every run.
  unsigned shard_of_key(std::uint64_t key) const {
    return static_cast<unsigned>(key % shards_.size());
  }

  /// The shard a request routes to (resolves it first). Throws
  /// util::ConfigError on an unresolvable request.
  unsigned shard_of(const SimRequest& request) const;

  /// Direct access to one shard's pool (tests, per-shard inspection).
  SimService& shard(unsigned index) { return *shards_.at(index); }
  const SimService& shard(unsigned index) const { return *shards_.at(index); }

  // ServiceApi ---------------------------------------------------------
  SubmitOutcome submit(const SimRequest& request,
                       double deadline_s = -1.0) override;
  std::vector<SubmitOutcome> submit_many(const SimRequest& request,
                                         std::size_t seeds,
                                         double deadline_s = -1.0) override;

  /// Compare jobs route by the *compare* canonical key — one resolution
  /// on shard 0, then fnv1a64(compare canonical) % shards — so a repeated
  /// comparison lands on the shard that holds its cached verdict. The
  /// verdict is a pure function of the ordered per-seed results, so it is
  /// byte-identical at any shard count; only which shard's cache warms up
  /// differs (per-(arm, seed) lanes cache on the compare job's shard).
  SubmitOutcome submit_compare(const CompareRequest& request,
                               double deadline_s = -1.0) override;

  std::optional<JobStatus> status(std::uint64_t id) override;
  std::shared_ptr<const JobResult> result(std::uint64_t id) const override;
  bool cancel(std::uint64_t id) override;
  bool wait(std::uint64_t id, double timeout_s) override;

  /// Fleet rollup: counters sum across shards; `workers` and
  /// `queue_capacity` are fleet totals; `batch_width` is the common
  /// per-shard value; `faults_injected` is read from the shared plan once
  /// (not summed — every shard sees the same plan).
  ServiceStats stats() const override;

  /// One ServiceStats per shard, in shard order.
  std::vector<ServiceStats> shard_stats() const override;

  const ScenarioRegistry& registry() const override {
    return shards_.front()->registry();
  }

 private:
  /// Globalize a shard-local job id (and the reverse).
  std::uint64_t global_id(std::uint64_t local, unsigned shard) const {
    return local * shards_.size() + shard;
  }

  std::vector<std::unique_ptr<SimService>> shards_;
};

}  // namespace mobitherm::service
