// Compatibility forwarder: the JSON value type moved to util/json.h so the
// workload layer can parse pack files without depending on the service
// library. Service code keeps addressing it as `json::` through the
// namespace alias below; new code should include util/json.h directly.
#pragma once

#include "util/json.h"

namespace mobitherm::service {
namespace json = ::mobitherm::util::json;
}  // namespace mobitherm::service
