// Deterministic, content-addressed result cache.
//
// Every simulation run is bit-deterministic in its canonical request (PR
// 1-3 guarantee identical traces for identical seeds, serial or parallel),
// which turns memoization into the biggest throughput lever the service
// has: a repeated request is a hash lookup instead of a multi-second
// simulation, and the cached payload is *byte-identical* to what a fresh
// run would serialize. The cache is a bounded LRU keyed by the FNV-1a hash
// of the canonical request string; the full string is stored alongside each
// entry and compared on lookup, so a 64-bit hash collision degrades to a
// miss instead of serving the wrong run. Thread-safe; counters feed the
// service `stats` op.
//
// Integrity and degradation:
//  * every entry stores an FNV-1a checksum of its payload. When a fault
//    plan is attached (the only in-process writer that can damage a
//    stored copy, via the kCacheCorruption site), the checksum is
//    verified on lookup and a corrupted payload is dropped and counted,
//    never served. Without a plan, entries are immutable after insert, so
//    the hit path skips the O(payload) hash and stays O(1);
//  * entries evicted from the primary LRU move to a same-sized *stale*
//    side-store. lookup_stale() serves them (marked, checksummed) so the
//    service can answer `stale: true` instead of failing outright when the
//    pool is saturated or a job exhausts its retries.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "sim/metrics.h"
#include "sim/report.h"
#include "util/fault.h"
#include "util/sync.h"

namespace mobitherm::service {

/// A completed run: its summaries plus the canonical serialized payload
/// (service/json.h) that the NDJSON `result` op embeds verbatim.
struct JobResult {
  sim::RunMetrics metrics;
  sim::RunReport report;
  std::string payload;
};

/// Serialize metrics + report into the canonical result payload. Field
/// order and number formatting are fixed, so equal inputs give equal bytes.
std::string serialize_result(const sim::RunMetrics& metrics,
                             const sim::RunReport& report);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  /// Lookups whose hash matched but whose canonical string did not.
  std::size_t collisions = 0;
  /// Entries whose payload failed its checksum on lookup (dropped).
  std::size_t corruptions = 0;
  /// lookup_stale() calls that served an evicted entry.
  std::size_t stale_hits = 0;
  std::size_t size = 0;
  std::size_t stale_size = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` bounds the number of retained results; 0 disables caching
  /// (every lookup misses, inserts are dropped). `faults` optionally arms
  /// the kCacheCorruption injection site (nullptr = no injection).
  explicit ResultCache(std::size_t capacity,
                       util::FaultPlan* faults = nullptr);

  /// Returns the cached result for (key, canonical) and marks it most
  /// recently used; nullptr on miss. A checksum mismatch drops the entry
  /// and misses.
  std::shared_ptr<const JobResult> lookup(std::uint64_t key,
                                          const std::string& canonical);

  /// Returns a previously *evicted* result for (key, canonical), checksum
  /// verified; nullptr when none is held. The degradation path: callers
  /// must surface the result as stale.
  std::shared_ptr<const JobResult> lookup_stale(std::uint64_t key,
                                                const std::string& canonical);

  /// Insert a result, evicting the least recently used entry (into the
  /// stale store) when full. Re-inserting an existing key refreshes its
  /// value and recency.
  void insert(std::uint64_t key, const std::string& canonical,
              std::shared_ptr<const JobResult> result);

  CacheStats stats() const;

 private:
  struct Node {
    std::uint64_t key;
    std::string canonical;
    std::shared_ptr<const JobResult> result;
    /// FNV-1a of result->payload at insert time.
    std::uint64_t checksum;
  };

  /// Moves the primary LRU tail into the stale store.
  void evict_to_stale_locked() REQUIRES(mutex_);

  /// Lock order: callers holding SimService::mutex_ may acquire this
  /// mutex (settle_locked -> lookup_stale / insert); nothing acquired
  /// under this mutex ever takes a lock, so the order is acyclic. See
  /// DESIGN.md section 15 and tools/lockcheck.
  mutable util::Mutex mutex_;
  std::size_t capacity_;       // immutable after construction
  util::FaultPlan* faults_;    // immutable after construction
  /// MRU at the front, LRU at the back.
  std::list<Node> lru_ GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::list<Node>::iterator> index_
      GUARDED_BY(mutex_);
  /// Evicted entries, newest eviction first; bounded by capacity_.
  std::list<Node> stale_ GUARDED_BY(mutex_);
  std::map<std::uint64_t, std::list<Node>::iterator> stale_index_
      GUARDED_BY(mutex_);
  CacheStats counters_ GUARDED_BY(mutex_);
};

}  // namespace mobitherm::service
