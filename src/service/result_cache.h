// Deterministic, content-addressed result cache.
//
// Every simulation run is bit-deterministic in its canonical request (PR
// 1-3 guarantee identical traces for identical seeds, serial or parallel),
// which turns memoization into the biggest throughput lever the service
// has: a repeated request is a hash lookup instead of a multi-second
// simulation, and the cached payload is *byte-identical* to what a fresh
// run would serialize. The cache is a bounded LRU keyed by the FNV-1a hash
// of the canonical request string; the full string is stored alongside each
// entry and compared on lookup, so a 64-bit hash collision degrades to a
// miss instead of serving the wrong run. Thread-safe; counters feed the
// service `stats` op.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "sim/metrics.h"
#include "sim/report.h"

namespace mobitherm::service {

/// A completed run: its summaries plus the canonical serialized payload
/// (service/json.h) that the NDJSON `result` op embeds verbatim.
struct JobResult {
  sim::RunMetrics metrics;
  sim::RunReport report;
  std::string payload;
};

/// Serialize metrics + report into the canonical result payload. Field
/// order and number formatting are fixed, so equal inputs give equal bytes.
std::string serialize_result(const sim::RunMetrics& metrics,
                             const sim::RunReport& report);

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  /// Lookups whose hash matched but whose canonical string did not.
  std::size_t collisions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

class ResultCache {
 public:
  /// `capacity` bounds the number of retained results; 0 disables caching
  /// (every lookup misses, inserts are dropped).
  explicit ResultCache(std::size_t capacity);

  /// Returns the cached result for (key, canonical) and marks it most
  /// recently used; nullptr on miss.
  std::shared_ptr<const JobResult> lookup(std::uint64_t key,
                                          const std::string& canonical);

  /// Insert a result, evicting the least recently used entry when full.
  /// Re-inserting an existing key refreshes its value and recency.
  void insert(std::uint64_t key, const std::string& canonical,
              std::shared_ptr<const JobResult> result);

  CacheStats stats() const;

 private:
  struct Node {
    std::uint64_t key;
    std::string canonical;
    std::shared_ptr<const JobResult> result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// MRU at the front, LRU at the back.
  std::list<Node> lru_;
  std::map<std::uint64_t, std::list<Node>::iterator> index_;
  CacheStats counters_;
};

}  // namespace mobitherm::service
