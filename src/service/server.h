// NDJSON request/response front end for SimService.
//
// One request per line, one response per line, both compact JSON objects.
// The protocol is deliberately flat so `echo '{"op":...}' | mobitherm_serve`
// works from a shell, and cached `result` responses embed the stored
// payload *verbatim* — a cache hit is byte-identical to the response the
// original run produced.
//
// Ops (request fields beyond "op" in parentheses):
//   submit    (scenario, app?, policy?, with_bml?, duration_s?,
//              initial_temp_c?, seed?, seeds?, app_levels?, app_phase_s?,
//              deadline_s?)            -> {ok, job, cached, stale}
//             With "seeds": N (N >= 2) the submit is *wide*: lanes
//             seed..seed+N-1 are admitted in one call (lockstep execution
//             for cache misses) and the response is
//             {ok, seeds, jobs:[{accepted, job|error, cached, stale}...]}
//             in lane order; "ok" is true iff every lane was accepted.
//   compare   (arms:[{scenario, app?, policy?, with_bml?, duration_s?,
//              initial_temp_c?, app_levels?, app_phase_s?, name?}, ...],
//              metric?, confidence?, max_seeds?, round_seeds?,
//              min_seeds?, base_seed?, deadline_s?)
//                                      -> {ok, job, cached, stale}
//             Admits a best-arm policy comparison as ONE job: >= 2 arms
//             run round-by-round over a shared seed schedule derived
//             from base_seed (common random numbers — the arms' own
//             "seed" fields are ignored) and stop early once the best
//             arm's confidence interval separates from every rival's.
//             The job's `result` payload is the verdict
//             {compare:{metric, winner, separated, early_stop, rounds,
//             seeds_per_arm, arms:[{name, mean, ci95, stddev, n}...]}}.
//             Per-(arm, seed) runs share the result cache with plain
//             submits, so overlapping or repeated comparisons are nearly
//             free; the verdict itself is cached and byte-identical on a
//             repeat. metric is one of "median_fps" (higher wins),
//             "peak_temp_c" / "mean_power_w" (lower wins).
//   status    (job)                    -> {ok, job, state, from_cache, ...}
//   result    (job)                    -> {ok, job, state, result:{...}}
//   cancel    (job)                    -> {ok, job, cancelled}
//   wait      (job, timeout_s?)        -> {ok, job, done, state}
//   stats     ()                       -> {ok, fleet rollup + cache
//              counters, shards:[{shard, queued, retry_backlog, running,
//              wide_jobs, lockstep_lanes, ...}]} — per-shard queue depth
//              and lane counts make saturation diagnosable per shard;
//              compare counters (compares, compare_rounds,
//              compare_lane_runs/hits, compare_early_stops) ride along in
//              both the rollup and the per-shard entries
//   scenarios ()                       -> {ok, scenarios:[...],
//              compare_metrics:[...]}
//   shutdown  ()                       -> {ok} and the serve loop exits
//
// Every response carries "ok" and echoes "op". Failures are structured:
//   {"ok":false,"op":...,"error":{"code":"...","message":"..."}}
// with "site" and "attempts" members added when a job failed under fault
// injection. No input line terminates the loop (only EOF or `shutdown`
// do), and no input line may crash the server — the malformed-input corpus
// test feeds it truncated JSON, wrong types, deep nesting and oversized
// lines and expects a structured error for every one.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "service/json.h"
#include "service/service.h"
#include "util/fault.h"

namespace mobitherm::service {

/// Upper bound on one request line; longer lines are answered with an
/// `oversized_line` error without being parsed (bounds parser memory).
inline constexpr std::size_t kMaxLineBytes = 64 * 1024;

class SimServer {
 public:
  /// `service` is any ServiceApi backend — a single SimService pool or a
  /// ShardedService fleet; `faults` optionally arms the
  /// kMalformedResponse injection site, which truncates responses
  /// mid-line to exercise client-side recovery; non-owning, nullptr =
  /// never injected.
  explicit SimServer(ServiceApi& service, util::FaultPlan* faults = nullptr)
      : service_(service), faults_(faults) {}

  /// Handle one request line, returning the response line (no trailing
  /// newline). Never throws: malformed input yields an ok:false response.
  std::string handle_line(const std::string& line);

  /// True once a `shutdown` request has been handled.
  bool shutdown_requested() const { return shutdown_requested_; }

  /// Read NDJSON requests from `in` until EOF or `shutdown`, writing one
  /// response line per request to `out` (flushed per line). Blank lines
  /// are ignored.
  void serve(std::istream& in, std::ostream& out);

 private:
  std::string handle_submit(const json::Value& request);
  std::string handle_submit_many(const SimRequest& request,
                                 std::size_t seeds, double deadline_s);
  std::string handle_compare(const json::Value& request);
  std::string handle_status(const json::Value& request);
  std::string handle_result(const json::Value& request);
  std::string handle_cancel(const json::Value& request);
  std::string handle_wait(const json::Value& request);
  std::string handle_stats();
  std::string handle_scenarios();

  /// Applies the kMalformedResponse site: with the plan armed and firing,
  /// the response is truncated mid-line (still one line, no longer valid
  /// JSON), modeling a connection dropped mid-write.
  std::string finish_response(std::string response);

  ServiceApi& service_;
  util::FaultPlan* faults_;
  bool shutdown_requested_ = false;
};

}  // namespace mobitherm::service
