// NDJSON request/response front end for SimService.
//
// One request per line, one response per line, both compact JSON objects.
// The protocol is deliberately flat so `echo '{"op":...}' | mobitherm_serve`
// works from a shell, and cached `result` responses embed the stored
// payload *verbatim* — a cache hit is byte-identical to the response the
// original run produced.
//
// Ops (request fields beyond "op" in parentheses):
//   submit    (scenario, app?, policy?, with_bml?, duration_s?,
//              initial_temp_c?, seed?, app_levels?, app_phase_s?,
//              deadline_s?)            -> {ok, job, cached}
//   status    (job)                    -> {ok, job, state, from_cache, ...}
//   result    (job)                    -> {ok, job, state, result:{...}}
//   cancel    (job)                    -> {ok, job, cancelled}
//   wait      (job, timeout_s?)        -> {ok, job, done, state}
//   stats     ()                       -> {ok, service + cache counters}
//   scenarios ()                       -> {ok, scenarios:[...]}
//   shutdown  ()                       -> {ok} and the serve loop exits
//
// Every response carries "ok" and echoes "op"; failures use
// {"ok":false,"error":"..."} and never terminate the loop (only EOF or
// `shutdown` do).
#pragma once

#include <iosfwd>
#include <string>

#include "service/json.h"
#include "service/service.h"

namespace mobitherm::service {

class SimServer {
 public:
  explicit SimServer(SimService& service) : service_(service) {}

  /// Handle one request line, returning the response line (no trailing
  /// newline). Never throws: malformed input yields an ok:false response.
  std::string handle_line(const std::string& line);

  /// True once a `shutdown` request has been handled.
  bool shutdown_requested() const { return shutdown_requested_; }

  /// Read NDJSON requests from `in` until EOF or `shutdown`, writing one
  /// response line per request to `out` (flushed per line). Blank lines
  /// are ignored.
  void serve(std::istream& in, std::ostream& out);

 private:
  std::string handle_submit(const json::Value& request);
  std::string handle_status(const json::Value& request);
  std::string handle_result(const json::Value& request);
  std::string handle_cancel(const json::Value& request);
  std::string handle_wait(const json::Value& request);
  std::string handle_stats();
  std::string handle_scenarios();

  SimService& service_;
  bool shutdown_requested_ = false;
};

}  // namespace mobitherm::service
