#include "service/shard.h"

#include <utility>

#include "util/error.h"

namespace mobitherm::service {

ShardedService::ShardedService(const ScenarioRegistry& registry,
                               const ServiceConfig& config, unsigned shards) {
  if (shards == 0) {
    throw util::ConfigError("ShardedService: shards must be positive");
  }
  shards_.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<SimService>(registry, config));
  }
}

unsigned ShardedService::shard_of(const SimRequest& request) const {
  PreparedRequest prepared = shards_.front()->prepare(request);
  if (!prepared.valid) {
    throw util::ConfigError("ShardedService: cannot route request: " +
                            prepared.error);
  }
  return shard_of_key(prepared.key);
}

SubmitOutcome ShardedService::submit(const SimRequest& request,
                                     double deadline_s) {
  // One resolution, shared by routing and admission. An unresolvable
  // request cannot be routed by key; it rejects on shard 0 so the
  // rejection is counted deterministically.
  PreparedRequest prepared = shards_.front()->prepare(request);
  const unsigned shard = prepared.valid ? shard_of_key(prepared.key) : 0;
  SubmitOutcome out =
      shards_[shard]->submit_prepared(std::move(prepared), deadline_s);
  if (out.accepted) {
    out.id = global_id(out.id, shard);
  }
  return out;
}

std::vector<SubmitOutcome> ShardedService::submit_many(
    const SimRequest& request, std::size_t seeds, double deadline_s) {
  if (seeds == 0) {
    throw util::ConfigError("ShardedService: submit_many needs >= 1 seed");
  }
  const std::size_t shard_count = shards_.size();
  // Prepare every lane once, then scatter lanes to their owning shards.
  // Lockstep packing happens *within* a shard: lanes of one wide submit
  // that hash to the same shard still fuse, while lanes on other shards
  // run concurrently in their own pools.
  std::vector<std::vector<PreparedRequest>> shard_lanes(shard_count);
  std::vector<std::vector<std::size_t>> shard_lane_index(shard_count);
  for (std::size_t k = 0; k < seeds; ++k) {
    SimRequest lane_request = request;
    lane_request.seed = request.seed + static_cast<std::uint64_t>(k);
    PreparedRequest prepared = shards_.front()->prepare(lane_request);
    const unsigned shard = prepared.valid ? shard_of_key(prepared.key) : 0;
    shard_lanes[shard].push_back(std::move(prepared));
    shard_lane_index[shard].push_back(k);
  }
  std::vector<SubmitOutcome> outcomes(seeds);
  for (unsigned s = 0; s < shard_count; ++s) {
    if (shard_lanes[s].empty()) {
      continue;
    }
    std::vector<SubmitOutcome> outs = shards_[s]->submit_prepared_lanes(
        std::move(shard_lanes[s]), deadline_s);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      if (outs[i].accepted) {
        outs[i].id = global_id(outs[i].id, s);
      }
      outcomes[shard_lane_index[s][i]] = std::move(outs[i]);
    }
  }
  return outcomes;
}

SubmitOutcome ShardedService::submit_compare(const CompareRequest& request,
                                             double deadline_s) {
  // One resolution, shared by routing and admission, like submit(); an
  // unresolvable comparison rejects on shard 0.
  PreparedCompare prepared = shards_.front()->prepare_compare(request);
  const unsigned shard = prepared.valid ? shard_of_key(prepared.key) : 0;
  SubmitOutcome out = shards_[shard]->submit_compare_prepared(
      std::move(prepared), deadline_s);
  if (out.accepted) {
    out.id = global_id(out.id, shard);
  }
  return out;
}

std::optional<JobStatus> ShardedService::status(std::uint64_t id) {
  const unsigned shard = static_cast<unsigned>(id % shards_.size());
  std::optional<JobStatus> s = shards_[shard]->status(id / shards_.size());
  if (s) {
    s->id = id;
  }
  return s;
}

std::shared_ptr<const JobResult> ShardedService::result(
    std::uint64_t id) const {
  const unsigned shard = static_cast<unsigned>(id % shards_.size());
  return shards_[shard]->result(id / shards_.size());
}

bool ShardedService::cancel(std::uint64_t id) {
  const unsigned shard = static_cast<unsigned>(id % shards_.size());
  return shards_[shard]->cancel(id / shards_.size());
}

bool ShardedService::wait(std::uint64_t id, double timeout_s) {
  const unsigned shard = static_cast<unsigned>(id % shards_.size());
  return shards_[shard]->wait(id / shards_.size(), timeout_s);
}

ServiceStats ShardedService::stats() const {
  ServiceStats total;
  bool first = true;
  for (const auto& shard : shards_) {
    const ServiceStats s = shard->stats();
    total.submitted += s.submitted;
    total.rejected += s.rejected;
    total.completed += s.completed;
    total.failed += s.failed;
    total.cancelled += s.cancelled;
    total.expired += s.expired;
    total.retries += s.retries;
    total.stale_served += s.stale_served;
    total.queued += s.queued;
    total.retry_backlog += s.retry_backlog;
    total.running += s.running;
    total.wide_jobs += s.wide_jobs;
    total.lockstep_lanes += s.lockstep_lanes;
    total.compares += s.compares;
    total.compare_rounds += s.compare_rounds;
    total.compare_lane_runs += s.compare_lane_runs;
    total.compare_lane_hits += s.compare_lane_hits;
    total.compare_early_stops += s.compare_early_stops;
    total.workers += s.workers;
    total.queue_capacity += s.queue_capacity;
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.evictions += s.cache.evictions;
    total.cache.collisions += s.cache.collisions;
    total.cache.corruptions += s.cache.corruptions;
    total.cache.stale_hits += s.cache.stale_hits;
    total.cache.size += s.cache.size;
    total.cache.stale_size += s.cache.stale_size;
    total.cache.capacity += s.cache.capacity;
    if (first) {
      // Shared across shards: report once, not summed.
      total.batch_width = s.batch_width;
      total.faults_injected = s.faults_injected;
      first = false;
    }
  }
  return total;
}

std::vector<ServiceStats> ShardedService::shard_stats() const {
  std::vector<ServiceStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->stats());
  }
  return out;
}

}  // namespace mobitherm::service
