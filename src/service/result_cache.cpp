#include "service/result_cache.h"

#include <utility>

#include "service/json.h"
#include "service/scenario_registry.h"
#include "util/hash.h"

namespace mobitherm::service {

namespace {

json::Value number_array(const std::vector<double>& values) {
  json::Value arr = json::Value::array();
  for (const double v : values) {
    arr.push(json::Value::number(v));
  }
  return arr;
}

json::Value number_matrix(const std::vector<std::vector<double>>& rows) {
  json::Value arr = json::Value::array();
  for (const auto& row : rows) {
    arr.push(number_array(row));
  }
  return arr;
}

json::Value string_array(const std::vector<std::string>& values) {
  json::Value arr = json::Value::array();
  for (const std::string& s : values) {
    arr.push(json::Value::string(s));
  }
  return arr;
}

json::Value pair_series(
    const std::vector<std::pair<double, double>>& series) {
  json::Value arr = json::Value::array();
  for (const auto& [t, v] : series) {
    json::Value point = json::Value::array();
    point.push(json::Value::number(t));
    point.push(json::Value::number(v));
    arr.push(std::move(point));
  }
  return arr;
}

}  // namespace

std::string serialize_result(const sim::RunMetrics& metrics,
                             const sim::RunReport& report) {
  json::Value m = json::Value::object();
  m.set("peak_temp_c", json::Value::number(metrics.peak_temp_c));
  m.set("final_temp_c", json::Value::number(metrics.final_temp_c));
  m.set("mean_power_w", json::Value::number(metrics.mean_power_w));
  m.set("temp_trace_c", pair_series(metrics.temp_trace_c));
  m.set("residency", number_matrix(metrics.residency));
  m.set("freqs_mhz", number_matrix(metrics.freqs_mhz));
  m.set("mean_rail_w", number_array(metrics.mean_rail_w));
  m.set("rail_names", string_array(metrics.rail_names));
  m.set("median_fps", number_array(metrics.median_fps));
  m.set("phase_fps", number_matrix(metrics.phase_fps));

  json::Value rep = json::Value::object();
  rep.set("duration_s", json::Value::number(report.duration_s));
  rep.set("peak_temp_c", json::Value::number(report.peak_temp_c));
  rep.set("mean_temp_c", json::Value::number(report.mean_temp_c));
  rep.set("time_above_limit_s",
          json::Value::number(report.time_above_limit_s));
  rep.set("temp_limit_c", json::Value::number(report.temp_limit_c));
  rep.set("total_energy_j", json::Value::number(report.total_energy_j));
  json::Value apps = json::Value::array();
  for (const sim::AppReport& app : report.apps) {
    json::Value a = json::Value::object();
    a.set("name", json::Value::string(app.name));
    a.set("median_fps", json::Value::number(app.median_fps));
    a.set("p10_fps", json::Value::number(app.p10_fps));
    a.set("p90_fps", json::Value::number(app.p90_fps));
    a.set("mean_fps", json::Value::number(app.mean_fps));
    a.set("energy_j", json::Value::number(app.energy_j));
    a.set("mj_per_frame", json::Value::number(app.mj_per_frame));
    apps.push(std::move(a));
  }
  rep.set("apps", std::move(apps));
  json::Value clusters = json::Value::array();
  for (const sim::ClusterReport& cluster : report.clusters) {
    json::Value c = json::Value::object();
    c.set("name", json::Value::string(cluster.name));
    c.set("mean_power_w", json::Value::number(cluster.mean_power_w));
    c.set("energy_j", json::Value::number(cluster.energy_j));
    c.set("mean_freq_mhz", json::Value::number(cluster.mean_freq_mhz));
    c.set("dvfs_transitions",
          json::Value::number(
              static_cast<double>(cluster.dvfs_transitions)));
    c.set("conflict_time_s", json::Value::number(cluster.conflict_time_s));
    clusters.push(std::move(c));
  }
  rep.set("clusters", std::move(clusters));

  json::Value root = json::Value::object();
  root.set("metrics", std::move(m));
  root.set("report", std::move(rep));
  return root.dump();
}

ResultCache::ResultCache(std::size_t capacity, util::FaultPlan* faults)
    : capacity_(capacity), faults_(faults) {
  counters_.capacity = capacity;
}

std::shared_ptr<const JobResult> ResultCache::lookup(
    std::uint64_t key, const std::string& canonical) {
  util::MutexLock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  if (it->second->canonical != canonical) {
    ++counters_.collisions;
    ++counters_.misses;
    return nullptr;
  }
  // Verification hashes the whole payload, so it runs only when a fault
  // plan could have damaged the stored copy; without one, entries are
  // immutable after insert and the hit path stays O(1).
  if (faults_ != nullptr &&
      util::fnv1a64(it->second->result->payload) != it->second->checksum) {
    // Storage corruption: drop the entry so it is recomputed, never
    // served. The stale store keeps only checksum-clean entries.
    lru_.erase(it->second);
    index_.erase(it);
    ++counters_.corruptions;
    ++counters_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++counters_.hits;
  return it->second->result;
}

std::shared_ptr<const JobResult> ResultCache::lookup_stale(
    std::uint64_t key, const std::string& canonical) {
  util::MutexLock lock(mutex_);
  const auto it = stale_index_.find(key);
  if (it == stale_index_.end() || it->second->canonical != canonical) {
    return nullptr;
  }
  if (faults_ != nullptr &&
      util::fnv1a64(it->second->result->payload) != it->second->checksum) {
    stale_.erase(it->second);
    stale_index_.erase(it);
    ++counters_.corruptions;
    return nullptr;
  }
  ++counters_.stale_hits;
  return it->second->result;
}

void ResultCache::insert(std::uint64_t key, const std::string& canonical,
                         std::shared_ptr<const JobResult> result) {
  if (capacity_ == 0 || !result) {
    return;
  }
  util::MutexLock lock(mutex_);
  // The checksum is computed over the payload as handed in; the
  // kCacheCorruption site then damages the *stored copy*, modeling rot
  // that happened after the write — exactly what lookup must catch.
  const std::uint64_t checksum = util::fnv1a64(result->payload);
  if (faults_ != nullptr &&
      faults_->fires(util::FaultSite::kCacheCorruption, key)) {
    auto damaged = std::make_shared<JobResult>(*result);
    if (!damaged->payload.empty()) {
      damaged->payload[key % damaged->payload.size()] ^= 0x20;
    }
    result = std::move(damaged);
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->canonical = canonical;
    it->second->result = std::move(result);
    it->second->checksum = checksum;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    evict_to_stale_locked();
  }
  lru_.push_front(Node{key, canonical, std::move(result), checksum});
  index_[key] = lru_.begin();
}

void ResultCache::evict_to_stale_locked() {
  Node victim = std::move(lru_.back());
  index_.erase(victim.key);
  lru_.pop_back();
  ++counters_.evictions;
  const auto it = stale_index_.find(victim.key);
  if (it != stale_index_.end()) {
    stale_.erase(it->second);
    stale_index_.erase(it);
  }
  if (stale_.size() >= capacity_) {
    stale_index_.erase(stale_.back().key);
    stale_.pop_back();
  }
  stale_.push_front(std::move(victim));
  stale_index_[stale_.front().key] = stale_.begin();
}

CacheStats ResultCache::stats() const {
  util::MutexLock lock(mutex_);
  CacheStats out = counters_;
  out.size = lru_.size();
  out.stale_size = stale_.size();
  return out;
}

}  // namespace mobitherm::service
