#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "sim/report.h"
#include "sim/sim_error.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/units.h"

namespace mobitherm::service {

namespace {

// Simulated seconds per engine slice. Slicing does not change results
// (run(1.0) twice == run(2.0), tick for tick); it only bounds how long a
// running job can overshoot its deadline.
constexpr double kSliceSimSeconds = 1.0;

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Decision key for per-slice fault sites: a pure mix of the job's
/// canonical-request hash, the attempt number and the slice index, so the
/// injected schedule is independent of worker interleaving.
std::uint64_t slice_fault_key(std::uint64_t job_key, int attempt,
                              std::uint64_t slice_index) {
  return util::derive_seed(
      util::derive_seed(job_key, static_cast<std::uint64_t>(attempt)),
      slice_index);
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

SimService::SimService(ScenarioRegistry registry, ServiceConfig config)
    : registry_(std::move(registry)),
      config_(config),
      cache_(config.cache_capacity, config.faults) {
  if (config_.workers == 0) {
    throw util::ConfigError("SimService: workers must be positive");
  }
  if (config_.max_attempts < 1) {
    throw util::ConfigError("SimService: max_attempts must be >= 1");
  }
  if (config_.retry_backoff_s < 0.0 || config_.retry_backoff_max_s < 0.0) {
    throw util::ConfigError("SimService: retry backoff must be nonnegative");
  }
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kQueued) {
        finish_locked(job, JobState::kCancelled, "service shutdown");
        job->error_code = errc::kShuttingDown;
      } else if (job->state == JobState::kRunning) {
        job->stop.store(true, std::memory_order_relaxed);
      }
    }
    queue_.clear();
    retries_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

SubmitOutcome SimService::submit(const SimRequest& request,
                                 double deadline_s) {
  SimRequest resolved;
  std::string canonical;
  try {
    resolved = registry_.resolve(request);
    canonical = registry_.canonical_key(resolved);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = e.what();
    out.reject_code = errc::kInvalidRequest;
    return out;
  }
  const std::uint64_t key = fnv1a64(canonical);
  std::shared_ptr<const JobResult> cached = cache_.lookup(key, canonical);

  std::lock_guard<std::mutex> lock(mutex_);
  if (shutting_down_) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "service is shutting down";
    out.reject_code = errc::kShuttingDown;
    return out;
  }
  if (!cached && config_.faults != nullptr &&
      config_.faults->fires(
          util::FaultSite::kQueueAdmission,
          config_.faults->next_sequence(util::FaultSite::kQueueAdmission))) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "queue admission failed (injected fault)";
    out.reject_code = errc::kInjectedFault;
    return out;
  }
  std::shared_ptr<const JobResult> stale;
  if (!cached && queue_.size() >= config_.queue_capacity) {
    // Saturated pool: degrade to a stale hit when we have one, otherwise
    // reject — explicit backpressure either way.
    if (config_.serve_stale) {
      stale = cache_.lookup_stale(key, canonical);
    }
    if (!stale) {
      ++rejected_;
      SubmitOutcome out;
      out.reject_reason = "queue full (" + std::to_string(queue_.size()) +
                          " jobs pending, capacity " +
                          std::to_string(config_.queue_capacity) + ")";
      out.reject_code = errc::kQueueFull;
      return out;
    }
  }

  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->resolved = resolved;
  job->key = key;
  job->canonical = canonical;
  jobs_[job->id] = job;
  ++submitted_;

  SubmitOutcome out;
  out.accepted = true;
  out.id = job->id;

  if (cached) {
    job->from_cache = true;
    job->result = std::move(cached);
    finish_locked(job, JobState::kDone, "");
    out.cached = true;
    return out;
  }
  if (stale) {
    job->from_cache = true;
    job->stale = true;
    job->result = std::move(stale);
    ++stale_served_;
    finish_locked(job, JobState::kDone, "");
    out.cached = true;
    out.stale = true;
    return out;
  }

  const double effective_deadline =
      deadline_s < 0.0 ? config_.default_deadline_s : deadline_s;
  if (effective_deadline > 0.0) {
    // Wall-clock enters here only: deadlines bound *when* a job may
    // finish, never what a finished job computes.
    job->deadline =  // MOBILINT: nondet-ok (admission deadline, not sim state)
        std::chrono::steady_clock::now() + to_duration(effective_deadline);
  }
  queue_.push_back(job);
  work_cv_.notify_one();
  return out;
}

std::optional<JobStatus> SimService::status(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  const std::shared_ptr<Job>& job = it->second;
  expire_if_overdue_locked(job);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.from_cache = job->from_cache;
  s.stale = job->stale;
  s.attempts = job->attempts;
  s.error = job->error;
  s.error_code = job->error_code;
  s.fault_site = job->fault_site;
  s.canonical = job->canonical;
  return s;
}

std::shared_ptr<const JobResult> SimService::result(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kDone) {
    return nullptr;
  }
  return it->second->result;
}

bool SimService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  const std::shared_ptr<Job>& job = it->second;
  if (is_terminal(job->state)) {
    return false;
  }
  if (job->state == JobState::kQueued) {
    // The worker skips non-queued jobs when it pops them (from the queue
    // or the retry multimap), so the stale entry is harmless.
    finish_locked(job, JobState::kCancelled, "cancelled while queued");
    job->error_code = errc::kCancelled;
    return true;
  }
  // Running: the worker observes the token at its next tick and finishes
  // the job as kCancelled. Best effort — a job that completes before the
  // next check finishes kDone.
  job->stop.store(true, std::memory_order_relaxed);
  return true;
}

bool SimService::wait(std::uint64_t id, double timeout_s) {
  const auto wait_deadline =  // MOBILINT: nondet-ok (caller timeout)
      std::chrono::steady_clock::now() + to_duration(std::max(0.0, timeout_s));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return false;
    }
    const std::shared_ptr<Job> job = it->second;
    expire_if_overdue_locked(job);
    if (is_terminal(job->state)) {
      return true;
    }
    const auto now = std::chrono::steady_clock::now();  // MOBILINT: nondet-ok
    if (now >= wait_deadline) {
      return false;
    }
    // Bounded wait so queued-job deadlines are noticed promptly even
    // without completion notifications.
    auto step = wait_deadline - now;
    if (job->deadline && *job->deadline > now) {
      step = std::min(step, *job->deadline - now);
    }
    step = std::min(step, to_duration(0.05));
    done_cv_.wait_for(lock, step);
  }
}

ServiceStats SimService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.retries = retry_count_;
    s.stale_served = stale_served_;
    s.queued = queue_.size() + retries_.size();
    s.running = running_;
  }
  s.workers = config_.workers;
  s.queue_capacity = config_.queue_capacity;
  if (config_.faults != nullptr) {
    s.faults_injected = config_.faults->total_injected();
  }
  s.cache = cache_.stats();
  return s;
}

void SimService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Wake for shutdown, queued work, or the earliest due retry.
    for (;;) {
      if (shutting_down_) {
        return;  // queued jobs were already cancelled by the destructor
      }
      if (!queue_.empty()) {
        break;
      }
      if (!retries_.empty()) {
        const auto due = retries_.begin()->first;
        if (std::chrono::steady_clock::now() >= due) {  // MOBILINT: nondet-ok
          break;
        }
        work_cv_.wait_until(lock, due);
      } else {
        work_cv_.wait(lock);
      }
    }
    std::shared_ptr<Job> job;
    if (!retries_.empty() &&
        std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
            retries_.begin()->first) {
      job = retries_.begin()->second;
      retries_.erase(retries_.begin());
    } else if (!queue_.empty()) {
      job = queue_.front();
      queue_.pop_front();
    } else {
      continue;  // woken for a retry that is not due yet
    }
    if (job->state != JobState::kQueued) {
      continue;  // cancelled or lazily expired while waiting
    }
    if (expire_if_overdue_locked(job)) {
      continue;
    }
    job->state = JobState::kRunning;
    ++running_;
    const int attempt = ++job->attempts;
    lock.unlock();
    execute(job, attempt);
    lock.lock();
  }
}

void SimService::execute(const std::shared_ptr<Job>& job, int attempt) {
  std::shared_ptr<JobResult> result;
  bool cancelled = false;
  bool expired = false;
  std::string error;
  std::string error_code;
  std::string fault_site;
  bool retryable = false;
  util::FaultPlan* plan = config_.faults;
  try {
    std::unique_ptr<sim::Engine> engine = registry_.make_engine(job->resolved);
    if (config_.guard_max_temp_c > 0.0) {
      engine->set_runaway_guard(
          util::celsius_to_kelvin(config_.guard_max_temp_c));
    }
    sim::MetricsObserver tap(config_.metrics);
    engine->add_observer(&tap);
    double remaining = job->resolved.duration_s;
    std::uint64_t slice_index = 0;
    while (remaining > 0.0) {
      if (job->stop.load(std::memory_order_relaxed)) {
        cancelled = true;
        break;
      }
      if (job->deadline &&
          std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
              *job->deadline) {
        expired = true;
        break;
      }
      const std::uint64_t fkey = slice_fault_key(job->key, attempt,
                                                 slice_index);
      if (plan != nullptr &&
          plan->fires(util::FaultSite::kWorkerCrashBeforeSlice, fkey)) {
        throw util::FaultInjected(util::FaultSite::kWorkerCrashBeforeSlice,
                                  fkey);
      }
      if (plan != nullptr &&
          plan->fires(util::FaultSite::kSliceLatency, fkey)) {
        // Injected wall-clock stall (deadline fuel for the tests); the
        // simulated state is untouched.
        std::this_thread::sleep_for(to_duration(plan->latency_s()));
      }
      const double slice = std::min(kSliceSimSeconds, remaining);
      engine->run(slice, &job->stop);
      remaining -= slice;
      if (plan != nullptr &&
          plan->fires(util::FaultSite::kWorkerCrashAfterSlice, fkey)) {
        throw util::FaultInjected(util::FaultSite::kWorkerCrashAfterSlice,
                                  fkey);
      }
      ++slice_index;
    }
    // The stop token and the deadline must also be honored when they fire
    // during the final (possibly partial) slice — checking only at the
    // top of the loop would let a job whose last slice overshot its
    // deadline complete as if nothing happened.
    if (!cancelled && !expired) {
      if (job->stop.load(std::memory_order_relaxed)) {
        cancelled = true;
      } else if (job->deadline &&
                 std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
                     *job->deadline) {
        expired = true;
      }
    }
    if (!cancelled && !expired) {
      result = std::make_shared<JobResult>();
      result->metrics = tap.metrics(*engine);
      result->report = sim::make_report(*engine, config_.metrics.temp_limit_c);
      result->payload = serialize_result(result->metrics, result->report);
      cache_.insert(job->key, job->canonical, result);
    }
  } catch (const util::FaultInjected& e) {
    error = e.what();
    error_code = errc::kInjectedFault;
    fault_site = util::to_string(e.site());
    retryable = true;  // injected faults model transient worker deaths
  } catch (const sim::SimError& e) {
    error = e.what();
    error_code = e.code() == sim::SimErrorCode::kThermalRunaway
                     ? errc::kSimRunaway
                     : errc::kSimNonFinite;
  } catch (const std::exception& e) {
    error = e.what();
    error_code = errc::kInternal;
  } catch (...) {
    error = "unknown error";
    error_code = errc::kInternal;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  --running_;
  if (error.empty()) {
    if (cancelled) {
      finish_locked(job, JobState::kCancelled, "cancelled while running");
      job->error_code = errc::kCancelled;
    } else if (expired) {
      finish_locked(job, JobState::kExpired,
                    "deadline exceeded while running");
      job->error_code = errc::kDeadlineRunning;
    } else {
      job->result = result;
      // A success after retried attempts wipes the transient-failure
      // breadcrumbs; only `attempts` records that the road was bumpy.
      job->error_code.clear();
      job->fault_site.clear();
      finish_locked(job, JobState::kDone, "");
    }
    return;
  }

  job->error_code = error_code;
  job->fault_site = fault_site;
  if (retryable && attempt < config_.max_attempts && !shutting_down_ &&
      !job->stop.load(std::memory_order_relaxed)) {
    ++retry_count_;
    job->state = JobState::kQueued;
    job->error = error;  // last failure, visible while backing off
    const auto due =  // MOBILINT: nondet-ok (backoff timer, not sim state)
        std::chrono::steady_clock::now() +
        to_duration(retry_backoff_s(attempt, job->key));
    retries_.emplace(due, job);
    work_cv_.notify_one();
    return;
  }
  // Retries exhausted (or the failure is deterministic): degrade to a
  // stale cached result when we have one, else fail with the code intact.
  if (config_.serve_stale) {
    std::shared_ptr<const JobResult> stale =
        cache_.lookup_stale(job->key, job->canonical);
    if (stale) {
      job->result = std::move(stale);
      job->stale = true;
      job->from_cache = true;
      ++stale_served_;
      finish_locked(job, JobState::kDone, error);
      return;
    }
  }
  finish_locked(job, JobState::kFailed, error);
}

double SimService::retry_backoff_s(int attempt, std::uint64_t key) const {
  double backoff = config_.retry_backoff_s;
  for (int i = 1; i < attempt; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, config_.retry_backoff_max_s);
  if (config_.faults != nullptr) {
    backoff *= config_.faults->jitter(
        util::derive_seed(key, static_cast<std::uint64_t>(attempt)));
  }
  return backoff;
}

bool SimService::expire_if_overdue_locked(const std::shared_ptr<Job>& job) {
  if (job->state != JobState::kQueued || !job->deadline) {
    return false;
  }
  if (std::chrono::steady_clock::now() <  // MOBILINT: nondet-ok
      *job->deadline) {
    return false;
  }
  finish_locked(job, JobState::kExpired, "deadline exceeded while queued");
  job->error_code = errc::kDeadlineQueued;
  return true;
}

void SimService::finish_locked(const std::shared_ptr<Job>& job,
                               JobState state, const std::string& error) {
  job->state = state;
  job->error = error;
  switch (state) {
    case JobState::kDone:
      ++completed_;
      break;
    case JobState::kFailed:
      ++failed_;
      break;
    case JobState::kCancelled:
      ++cancelled_;
      break;
    case JobState::kExpired:
      ++expired_;
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  done_cv_.notify_all();
}

}  // namespace mobitherm::service
