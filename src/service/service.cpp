#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "service/json.h"
#include "sim/batch.h"
#include "sim/compare.h"
#include "sim/lockstep.h"
#include "sim/montecarlo.h"
#include "sim/report.h"
#include "sim/sim_error.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/seed_schedule.h"
#include "util/units.h"

namespace mobitherm::service {

namespace {

// Simulated seconds per engine slice. Slicing does not change results
// (run(1.0) twice == run(2.0), tick for tick); it only bounds how long a
// running job can overshoot its deadline.
constexpr double kSliceSimSeconds = 1.0;

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Decision key for per-slice fault sites: a pure mix of the job's
/// canonical-request hash, the attempt number and the slice index, so the
/// injected schedule is independent of worker interleaving.
std::uint64_t slice_fault_key(std::uint64_t job_key, int attempt,
                              std::uint64_t slice_index) {
  return util::derive_seed(
      util::derive_seed(job_key, static_cast<std::uint64_t>(attempt)),
      slice_index);
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

SimService::SimService(ScenarioRegistry registry, ServiceConfig config)
    : registry_(std::move(registry)),
      config_(config),
      cache_(config.cache_capacity, config.faults) {
  if (config_.workers == 0) {
    throw util::ConfigError("SimService: workers must be positive");
  }
  if (config_.max_attempts < 1) {
    throw util::ConfigError("SimService: max_attempts must be >= 1");
  }
  if (config_.retry_backoff_s < 0.0 || config_.retry_backoff_max_s < 0.0) {
    throw util::ConfigError("SimService: retry backoff must be nonnegative");
  }
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() {
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kQueued) {
        finish_locked(job, JobState::kCancelled, "service shutdown");
        job->error_code = errc::kShuttingDown;
      } else if (job->state == JobState::kRunning) {
        job->stop.store(true, std::memory_order_relaxed);
      }
    }
    queue_.clear();
    retries_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

PreparedRequest SimService::prepare(const SimRequest& request) const {
  PreparedRequest prepared;
  try {
    prepared.resolved = registry_.resolve(request);
    prepared.canonical = registry_.canonical_key(prepared.resolved);
    prepared.key = fnv1a64(prepared.canonical);
    prepared.valid = true;
  } catch (const std::exception& e) {
    prepared.error = e.what();
  }
  return prepared;
}

SubmitOutcome SimService::submit(const SimRequest& request,
                                 double deadline_s) {
  return submit_prepared(prepare(request), deadline_s);
}

SubmitOutcome SimService::submit_prepared(PreparedRequest prepared,
                                          double deadline_s) {
  if (!prepared.valid) {
    util::MutexLock lock(mutex_);
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = prepared.error;
    out.reject_code = errc::kInvalidRequest;
    return out;
  }
  return admit_unit(prepared.key, std::move(prepared.canonical),
                    std::move(prepared.resolved), nullptr, deadline_s);
}

SubmitOutcome SimService::admit_unit(
    std::uint64_t key, std::string canonical, SimRequest resolved,
    std::shared_ptr<const CompareRequest> compare, double deadline_s) {
  std::shared_ptr<const JobResult> cached = cache_.lookup(key, canonical);

  util::MutexLock lock(mutex_);
  if (shutting_down_) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "service is shutting down";
    out.reject_code = errc::kShuttingDown;
    return out;
  }
  if (!cached && config_.faults != nullptr &&
      config_.faults->fires(
          util::FaultSite::kQueueAdmission,
          config_.faults->next_sequence(util::FaultSite::kQueueAdmission))) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "queue admission failed (injected fault)";
    out.reject_code = errc::kInjectedFault;
    return out;
  }
  std::shared_ptr<const JobResult> stale;
  if (!cached && queue_.size() >= config_.queue_capacity) {
    // Saturated pool: degrade to a stale hit when we have one, otherwise
    // reject — explicit backpressure either way.
    if (config_.serve_stale) {
      stale = cache_.lookup_stale(key, canonical);
    }
    if (!stale) {
      ++rejected_;
      SubmitOutcome out;
      out.reject_reason = "queue full (" + std::to_string(queue_.size()) +
                          " jobs pending, capacity " +
                          std::to_string(config_.queue_capacity) + ")";
      out.reject_code = errc::kQueueFull;
      return out;
    }
  }

  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->resolved = std::move(resolved);
  job->compare = std::move(compare);
  job->key = key;
  job->canonical = std::move(canonical);
  jobs_[job->id] = job;
  ++submitted_;
  if (job->compare) {
    ++compares_;
  }

  SubmitOutcome out;
  out.accepted = true;
  out.id = job->id;

  if (cached) {
    job->from_cache = true;
    job->result = std::move(cached);
    finish_locked(job, JobState::kDone, "");
    out.cached = true;
    return out;
  }
  if (stale) {
    job->from_cache = true;
    job->stale = true;
    job->result = std::move(stale);
    ++stale_served_;
    finish_locked(job, JobState::kDone, "");
    out.cached = true;
    out.stale = true;
    return out;
  }

  const double effective_deadline =
      deadline_s < 0.0 ? config_.default_deadline_s : deadline_s;
  if (effective_deadline > 0.0) {
    // Wall-clock enters here only: deadlines bound *when* a job may
    // finish, never what a finished job computes.
    job->deadline =  // MOBILINT: nondet-ok (admission deadline, not sim state)
        std::chrono::steady_clock::now() + to_duration(effective_deadline);
  }
  queue_.push_back(Work{{job}});
  work_cv_.notify_one();
  return out;
}

PreparedCompare SimService::prepare_compare(
    const CompareRequest& request) const {
  PreparedCompare prepared;
  try {
    if (request.arms.size() < 2) {
      throw util::ConfigError("compare: need at least two arms");
    }
    if (!(request.confidence > 0.0) || !(request.confidence < 1.0)) {
      throw util::ConfigError("compare: confidence must be in (0, 1)");
    }
    if (request.min_seeds < 2) {
      throw util::ConfigError("compare: min_seeds must be >= 2");
    }
    if (request.max_seeds < request.min_seeds) {
      throw util::ConfigError("compare: max_seeds must be >= min_seeds");
    }
    if (request.round_seeds < 1) {
      throw util::ConfigError("compare: round_seeds must be >= 1");
    }
    // Validates the metric name (and fixes the direction later).
    (void)sim::compare_metric_higher_is_better(request.metric);

    CompareRequest spec = request;
    // The compare canonical key embeds every option plus each arm's own
    // canonical form at seed 0 — the schedule supplies real seeds, so the
    // arms' seed fields must not distinguish otherwise equal comparisons.
    std::string canonical;
    canonical.reserve(256);
    canonical += "cmp=";
    canonical += kSimCodeVersion;
    canonical += ";metric=";
    canonical += spec.metric;
    canonical += ";confidence=";
    canonical += json::format_number(spec.confidence);
    canonical += ";max_seeds=";
    canonical += std::to_string(spec.max_seeds);
    canonical += ";round_seeds=";
    canonical += std::to_string(spec.round_seeds);
    canonical += ";min_seeds=";
    canonical += std::to_string(spec.min_seeds);
    canonical += ";base_seed=";
    canonical += std::to_string(spec.base_seed);
    canonical += ";arms=";
    canonical += std::to_string(spec.arms.size());
    for (std::size_t a = 0; a < spec.arms.size(); ++a) {
      CompareArmRequest& arm = spec.arms[a];
      arm.request = registry_.resolve(arm.request);
      if (arm.name.empty()) {
        arm.name = arm.request.policy;
        if (arm.request.with_bml) {
          arm.name += "+bml";
        }
      }
      SimRequest keyed = arm.request;
      keyed.seed = 0;
      canonical += ";arm";
      canonical += std::to_string(a);
      canonical += "=";
      // Names appear in the verdict payload, so they are part of the
      // identity; quoting keeps arbitrary labels from forging delimiters.
      canonical += json::quote(arm.name);
      canonical += "@";
      canonical += registry_.canonical_key(keyed);
    }
    prepared.spec = std::move(spec);
    prepared.canonical = std::move(canonical);
    prepared.key = fnv1a64(prepared.canonical);
    prepared.valid = true;
  } catch (const std::exception& e) {
    prepared.error = e.what();
  }
  return prepared;
}

SubmitOutcome SimService::submit_compare(const CompareRequest& request,
                                         double deadline_s) {
  return submit_compare_prepared(prepare_compare(request), deadline_s);
}

SubmitOutcome SimService::submit_compare_prepared(PreparedCompare prepared,
                                                  double deadline_s) {
  if (!prepared.valid) {
    util::MutexLock lock(mutex_);
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = prepared.error;
    out.reject_code = errc::kInvalidRequest;
    return out;
  }
  return admit_unit(
      prepared.key, std::move(prepared.canonical), SimRequest{},
      std::make_shared<const CompareRequest>(std::move(prepared.spec)),
      deadline_s);
}

std::vector<SubmitOutcome> SimService::submit_many(const SimRequest& request,
                                                   std::size_t seeds,
                                                   double deadline_s) {
  if (seeds == 0) {
    throw util::ConfigError("SimService: submit_many needs >= 1 seed");
  }
  // Lane k is the request at seed request.seed + k.
  std::vector<PreparedRequest> lanes;
  lanes.reserve(seeds);
  for (std::size_t k = 0; k < seeds; ++k) {
    SimRequest lane_request = request;
    lane_request.seed = request.seed + static_cast<std::uint64_t>(k);
    lanes.push_back(prepare(lane_request));
  }
  return submit_prepared_lanes(std::move(lanes), deadline_s);
}

std::vector<SubmitOutcome> SimService::submit_prepared_lanes(
    std::vector<PreparedRequest> lanes, double deadline_s) {
  const std::size_t seeds = lanes.size();
  std::vector<SubmitOutcome> outcomes(seeds);

  // Per-lane cache probing, outside the service mutex like submit().
  std::vector<std::shared_ptr<const JobResult>> cached(seeds);
  for (std::size_t k = 0; k < seeds; ++k) {
    if (!lanes[k].valid) {
      outcomes[k].reject_reason = lanes[k].error;
      outcomes[k].reject_code = errc::kInvalidRequest;
      continue;
    }
    cached[k] = cache_.lookup(lanes[k].key, lanes[k].canonical);
  }

  const std::size_t width = resolved_batch_width();
  util::MutexLock lock(mutex_);
  std::vector<std::shared_ptr<Job>> group;
  const auto flush_group = [&] {
    if (group.empty()) {
      return;
    }
    queue_.push_back(Work{std::move(group)});
    group.clear();
    work_cv_.notify_one();
  };
  const double effective_deadline =
      deadline_s < 0.0 ? config_.default_deadline_s : deadline_s;
  for (std::size_t k = 0; k < seeds; ++k) {
    if (!lanes[k].valid) {
      ++rejected_;
      continue;
    }
    if (shutting_down_) {
      ++rejected_;
      outcomes[k].reject_reason = "service is shutting down";
      outcomes[k].reject_code = errc::kShuttingDown;
      continue;
    }
    std::shared_ptr<const JobResult> stale;
    if (!cached[k] && queue_.size() >= config_.queue_capacity) {
      // Saturated pool: same per-lane degradation as submit(). A lockstep
      // group occupies one slot, so admission is checked per group start.
      if (config_.serve_stale) {
        stale = cache_.lookup_stale(lanes[k].key, lanes[k].canonical);
      }
      if (!stale) {
        ++rejected_;
        outcomes[k].reject_reason =
            "queue full (" + std::to_string(queue_.size()) +
            " jobs pending, capacity " +
            std::to_string(config_.queue_capacity) + ")";
        outcomes[k].reject_code = errc::kQueueFull;
        continue;
      }
    }

    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->resolved = std::move(lanes[k].resolved);
    job->key = lanes[k].key;
    job->canonical = std::move(lanes[k].canonical);
    jobs_[job->id] = job;
    ++submitted_;
    outcomes[k].accepted = true;
    outcomes[k].id = job->id;

    if (cached[k]) {
      job->from_cache = true;
      job->result = std::move(cached[k]);
      finish_locked(job, JobState::kDone, "");
      outcomes[k].cached = true;
      continue;
    }
    if (stale) {
      job->from_cache = true;
      job->stale = true;
      job->result = std::move(stale);
      ++stale_served_;
      finish_locked(job, JobState::kDone, "");
      outcomes[k].cached = true;
      outcomes[k].stale = true;
      continue;
    }

    if (effective_deadline > 0.0) {
      job->deadline =  // MOBILINT: nondet-ok (admission deadline)
          std::chrono::steady_clock::now() + to_duration(effective_deadline);
    }
    group.push_back(std::move(job));
    if (group.size() >= width) {
      flush_group();
    }
  }
  flush_group();
  return outcomes;
}

std::optional<JobStatus> SimService::status(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  const std::shared_ptr<Job>& job = it->second;
  expire_if_overdue_locked(job);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.from_cache = job->from_cache;
  s.stale = job->stale;
  s.attempts = job->attempts;
  s.error = job->error;
  s.error_code = job->error_code;
  s.fault_site = job->fault_site;
  s.canonical = job->canonical;
  return s;
}

std::shared_ptr<const JobResult> SimService::result(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kDone) {
    return nullptr;
  }
  return it->second->result;
}

bool SimService::cancel(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  const std::shared_ptr<Job>& job = it->second;
  if (is_terminal(job->state)) {
    return false;
  }
  if (job->state == JobState::kQueued) {
    // The worker skips non-queued jobs when it pops them (from the queue
    // or the retry multimap), so the stale entry is harmless.
    finish_locked(job, JobState::kCancelled, "cancelled while queued");
    job->error_code = errc::kCancelled;
    return true;
  }
  // Running: the worker observes the token at its next tick and finishes
  // the job as kCancelled. Best effort — a job that completes before the
  // next check finishes kDone.
  job->stop.store(true, std::memory_order_relaxed);
  return true;
}

bool SimService::wait(std::uint64_t id, double timeout_s) {
  const auto wait_deadline =  // MOBILINT: nondet-ok (caller timeout)
      std::chrono::steady_clock::now() + to_duration(std::max(0.0, timeout_s));
  util::UniqueLock lock(mutex_);
  for (;;) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return false;
    }
    const std::shared_ptr<Job> job = it->second;
    expire_if_overdue_locked(job);
    if (is_terminal(job->state)) {
      return true;
    }
    const auto now = std::chrono::steady_clock::now();  // MOBILINT: nondet-ok
    if (now >= wait_deadline) {
      return false;
    }
    // Bounded wait so queued-job deadlines are noticed promptly even
    // without completion notifications.
    auto step = wait_deadline - now;
    if (job->deadline && *job->deadline > now) {
      step = std::min(step, *job->deadline - now);
    }
    step = std::min(step, to_duration(0.05));
    done_cv_.wait_for(lock, step);
  }
}

ServiceStats SimService::stats() const {
  ServiceStats s;
  {
    util::MutexLock lock(mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.retries = retry_count_;
    s.stale_served = stale_served_;
    s.queued = queue_.size() + retries_.size();
    s.retry_backlog = retries_.size();
    s.running = running_;
    s.wide_jobs = wide_jobs_;
    s.lockstep_lanes = lockstep_lanes_;
    s.compares = compares_;
    s.compare_rounds = compare_rounds_;
    s.compare_lane_runs = compare_lane_runs_;
    s.compare_lane_hits = compare_lane_hits_;
    s.compare_early_stops = compare_early_stops_;
  }
  s.workers = config_.workers;
  s.queue_capacity = config_.queue_capacity;
  s.batch_width = resolved_batch_width();
  if (config_.faults != nullptr) {
    s.faults_injected = config_.faults->total_injected();
  }
  s.cache = cache_.stats();
  return s;
}

void SimService::worker_loop() {
  util::UniqueLock lock(mutex_);
  for (;;) {
    // Wake for shutdown, queued work, or the earliest due retry.
    for (;;) {
      if (shutting_down_) {
        return;  // queued jobs were already cancelled by the destructor
      }
      if (!queue_.empty()) {
        break;
      }
      if (!retries_.empty()) {
        const auto due = retries_.begin()->first;
        if (std::chrono::steady_clock::now() >= due) {  // MOBILINT: nondet-ok
          break;
        }
        work_cv_.wait_until(lock, due);
      } else {
        work_cv_.wait(lock);
      }
    }
    std::vector<std::shared_ptr<Job>> lanes;
    if (!retries_.empty() &&
        std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
            retries_.begin()->first) {
      // Retries are always scalar, even when the failed attempt ran in a
      // lockstep group — a flaky lane degrades alone.
      lanes.push_back(retries_.begin()->second);
      retries_.erase(retries_.begin());
    } else if (!queue_.empty()) {
      lanes = std::move(queue_.front().lanes);
      queue_.pop_front();
    } else {
      continue;  // woken for a retry that is not due yet
    }
    // Drop lanes that were cancelled or expired while waiting; the rest of
    // the group runs as if they were never submitted alongside.
    std::erase_if(lanes, [&](const std::shared_ptr<Job>& job) {
      return job->state != JobState::kQueued || expire_if_overdue_locked(job);
    });
    if (lanes.empty()) {
      continue;
    }
    std::vector<int> attempts(lanes.size());
    for (std::size_t k = 0; k < lanes.size(); ++k) {
      lanes[k]->state = JobState::kRunning;
      ++running_;
      attempts[k] = ++lanes[k]->attempts;
    }
    if (lanes.size() > 1) {
      ++wide_jobs_;
      lockstep_lanes_ += lanes.size();
    }
    lock.unlock();
    if (lanes.size() == 1) {
      // Compare jobs are always admitted alone in their Work slot.
      if (lanes[0]->compare) {
        execute_compare(lanes[0], attempts[0]);
      } else {
        execute(lanes[0], attempts[0]);
      }
    } else {
      execute_wide(lanes, attempts);
    }
    lock.lock();
  }
}

std::shared_ptr<JobResult> SimService::run_resolved_sliced(
    const SimRequest& resolved, std::uint64_t fault_key, int attempt,
    const Job& job, ExecOutcome& out) {
  util::FaultPlan* plan = config_.faults;
  std::unique_ptr<sim::Engine> engine = registry_.make_engine(resolved);
  if (config_.guard_max_temp_c > 0.0) {
    // Per-model threshold: baseline keeps the configured guard exactly,
    // alternate models clamp to their re-derived point of no return.
    engine->set_runaway_guard(registry_.runaway_guard_temp_k(
        resolved, config_.guard_max_temp_c));
  }
  sim::MetricsObserver tap(config_.metrics);
  engine->add_observer(&tap);
  double remaining = resolved.duration_s;
  std::uint64_t slice_index = 0;
  while (remaining > 0.0) {
    if (job.stop.load(std::memory_order_relaxed)) {
      out.cancelled = true;
      break;
    }
    if (job.deadline &&
        std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
            *job.deadline) {
      out.expired = true;
      break;
    }
    const std::uint64_t fkey = slice_fault_key(fault_key, attempt,
                                               slice_index);
    if (plan != nullptr &&
        plan->fires(util::FaultSite::kWorkerCrashBeforeSlice, fkey)) {
      throw util::FaultInjected(util::FaultSite::kWorkerCrashBeforeSlice,
                                fkey);
    }
    if (plan != nullptr &&
        plan->fires(util::FaultSite::kSliceLatency, fkey)) {
      // Injected wall-clock stall (deadline fuel for the tests); the
      // simulated state is untouched.
      std::this_thread::sleep_for(to_duration(plan->latency_s()));
    }
    const double slice = std::min(kSliceSimSeconds, remaining);
    engine->run(slice, &job.stop);
    remaining -= slice;
    if (plan != nullptr &&
        plan->fires(util::FaultSite::kWorkerCrashAfterSlice, fkey)) {
      throw util::FaultInjected(util::FaultSite::kWorkerCrashAfterSlice,
                                fkey);
    }
    ++slice_index;
  }
  // The stop token and the deadline must also be honored when they fire
  // during the final (possibly partial) slice — checking only at the
  // top of the loop would let a job whose last slice overshot its
  // deadline complete as if nothing happened.
  if (!out.cancelled && !out.expired) {
    if (job.stop.load(std::memory_order_relaxed)) {
      out.cancelled = true;
    } else if (job.deadline &&
               std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
                   *job.deadline) {
      out.expired = true;
    }
  }
  if (out.cancelled || out.expired) {
    return nullptr;
  }
  auto result = std::make_shared<JobResult>();
  result->metrics = tap.metrics(*engine);
  result->report = sim::make_report(*engine, config_.metrics.temp_limit_c);
  result->payload = serialize_result(result->metrics, result->report);
  return result;
}

void SimService::execute(const std::shared_ptr<Job>& job, int attempt) {
  ExecOutcome out;
  try {
    std::shared_ptr<JobResult> result =
        run_resolved_sliced(job->resolved, job->key, attempt, *job, out);
    if (result) {
      cache_.insert(job->key, job->canonical, result);
      out.result = std::move(result);
    }
  } catch (...) {
    classify_current_exception(out);
  }

  util::MutexLock lock(mutex_);
  settle_locked(job, attempt, out);
}

// One compare job: rounds of per-(arm, seed) lanes over the shared seed
// schedule. Every lane is either served from the result cache (under the
// same canonical key a direct submit of that request would use) or run as
// deadline/stop-cooperative slices; metric values feed per-arm Welford
// accumulators in (arm, slot) order and the pure decide_best_arm()
// decision runs after every round. A faulted lane aborts the attempt and
// re-queues the whole job through the usual retry machinery — completed
// lanes are cache hits on the retry, and the schedule, being a pure
// function of the base seed, is never perturbed.
void SimService::execute_compare(const std::shared_ptr<Job>& job,
                                 int attempt) {
  ExecOutcome out;
  std::size_t rounds = 0;
  std::size_t lane_runs = 0;
  std::size_t lane_hits = 0;
  bool early_stop = false;
  try {
    const CompareRequest& spec = *job->compare;
    const bool higher = sim::compare_metric_higher_is_better(spec.metric);
    const std::size_t arm_count = spec.arms.size();
    const util::SeedSchedule schedule(spec.base_seed);
    std::vector<sim::WelfordAccumulator> accs(arm_count);
    int seeds_done = 0;
    bool separated = false;
    std::size_t best = 0;
    bool aborted = false;
    while (seeds_done < spec.max_seeds && !aborted) {
      const int round =
          std::min(spec.round_seeds, spec.max_seeds - seeds_done);
      ++rounds;
      for (std::size_t a = 0; a < arm_count && !aborted; ++a) {
        for (int s = 0; s < round && !aborted; ++s) {
          SimRequest lane = spec.arms[a].request;
          lane.seed =
              schedule.at(static_cast<std::uint64_t>(seeds_done + s));
          const std::string canonical = registry_.canonical_key(lane);
          const std::uint64_t key = fnv1a64(canonical);
          std::shared_ptr<const JobResult> result =
              cache_.lookup(key, canonical);
          if (result) {
            ++lane_hits;
          } else {
            ++lane_runs;
            std::shared_ptr<JobResult> fresh =
                run_resolved_sliced(lane, key, attempt, *job, out);
            if (!fresh) {
              aborted = true;  // cancelled or expired mid-lane
              break;
            }
            cache_.insert(key, canonical, fresh);
            result = std::move(fresh);
          }
          accs[a].add(
              sim::compare_metric_value(result->metrics, spec.metric));
        }
      }
      if (aborted) {
        break;
      }
      seeds_done += round;
      const sim::CompareDecision decision =
          sim::decide_best_arm(accs, spec.confidence, higher);
      best = decision.best;
      if (seeds_done >= spec.min_seeds && decision.separated) {
        separated = true;
        early_stop = seeds_done < spec.max_seeds;
        break;
      }
    }
    if (!out.cancelled && !out.expired) {
      // Verdict payload: a pure function of the ordered per-seed results
      // (json formatting is canonical), so replays are byte-identical at
      // any worker or shard count.
      json::Value verdict = json::Value::object();
      json::Value body = json::Value::object();
      body.set("metric", json::Value::string(spec.metric));
      body.set("higher_is_better", json::Value::boolean(higher));
      body.set("confidence", json::Value::number(spec.confidence));
      body.set("winner", json::Value::string(spec.arms[best].name));
      body.set("winner_index",
               json::Value::number(static_cast<double>(best)));
      body.set("separated", json::Value::boolean(separated));
      body.set("early_stop", json::Value::boolean(early_stop));
      body.set("rounds", json::Value::number(static_cast<double>(rounds)));
      body.set("seeds_per_arm",
               json::Value::number(static_cast<double>(seeds_done)));
      body.set("max_seeds",
               json::Value::number(static_cast<double>(spec.max_seeds)));
      body.set("base_seed",
               json::Value::number(static_cast<double>(spec.base_seed)));
      json::Value arms = json::Value::array();
      for (std::size_t a = 0; a < arm_count; ++a) {
        const sim::ArmStats stats =
            sim::arm_stats(accs[a], spec.confidence);
        json::Value arm = json::Value::object();
        arm.set("name", json::Value::string(spec.arms[a].name));
        arm.set("mean", json::Value::number(stats.mean));
        // Half-width of the two-sided interval at `confidence`; the field
        // name pins the default level, as the issue's verdict shape does.
        arm.set("ci95", json::Value::number(stats.half_width));
        arm.set("stddev", json::Value::number(stats.stddev));
        arm.set("n", json::Value::number(static_cast<double>(stats.n)));
        arms.push(arm);
      }
      body.set("arms", arms);
      verdict.set("compare", body);
      auto result = std::make_shared<JobResult>();
      result->payload = verdict.dump();
      cache_.insert(job->key, job->canonical, result);
      out.result = std::move(result);
    }
  } catch (...) {
    classify_current_exception(out);
  }

  util::MutexLock lock(mutex_);
  compare_rounds_ += rounds;
  compare_lane_runs_ += lane_runs;
  compare_lane_hits_ += lane_hits;
  if (out.result != nullptr && early_stop) {
    ++compare_early_stops_;
  }
  settle_locked(job, attempt, out);
}

// Lockstep execution of one wide group. Mirrors execute() lane by lane:
// the same per-slice stop/deadline/fault checks run for every lane, keyed
// by the lane's own canonical hash, so a fault schedule replays exactly as
// it would across `lanes` scalar jobs. Only the physics is shared — and
// only when the lanes' thermal propagators match bitwise.
void SimService::execute_wide(const std::vector<std::shared_ptr<Job>>& lanes,
                              const std::vector<int>& attempts) {
  const std::size_t n = lanes.size();
  std::vector<ExecOutcome> outs(n);
  std::vector<std::unique_ptr<sim::Engine>> engines(n);
  std::vector<sim::MetricsObserver> taps;
  taps.reserve(n);  // sized up front: &taps[k] stays stable below
  for (std::size_t k = 0; k < n; ++k) {
    taps.emplace_back(config_.metrics);
  }
  util::FaultPlan* plan = config_.faults;

  // Per-lane engine construction; a failure retires that lane alone.
  for (std::size_t k = 0; k < n; ++k) {
    try {
      engines[k] = registry_.make_engine(lanes[k]->resolved);
      if (config_.guard_max_temp_c > 0.0) {
        engines[k]->set_runaway_guard(registry_.runaway_guard_temp_k(
            lanes[k]->resolved, config_.guard_max_temp_c));
      }
      engines[k]->add_observer(&taps[k]);
    } catch (...) {
      classify_current_exception(outs[k]);
      engines[k].reset();
    }
  }

  // Lanes whose engines exist enter the lockstep runner; lane_of maps
  // runner lane index -> group index.
  std::vector<std::size_t> lane_of;
  std::vector<sim::LockstepRunner::Lane> specs;
  for (std::size_t k = 0; k < n; ++k) {
    if (engines[k]) {
      specs.push_back({engines[k].get(), &lanes[k]->stop});
      lane_of.push_back(k);
    }
  }

  if (!lane_of.empty()) try {
    sim::LockstepRunner runner(std::move(specs));
    const std::size_t m = lane_of.size();
    std::vector<double> remaining(m);
    std::vector<double> seconds(m, 0.0);
    std::vector<std::uint64_t> slice_index(m, 0);
    std::vector<char> live(m, 1);
    for (std::size_t r = 0; r < m; ++r) {
      remaining[r] = lanes[lane_of[r]]->resolved.duration_s;
    }
    for (;;) {
      bool any = false;
      for (std::size_t r = 0; r < m; ++r) {
        seconds[r] = 0.0;
        if (live[r] == 0 || remaining[r] <= 0.0) {
          continue;
        }
        const Job& job = *lanes[lane_of[r]];
        ExecOutcome& out = outs[lane_of[r]];
        if (job.stop.load(std::memory_order_relaxed)) {
          out.cancelled = true;
          live[r] = 0;
          continue;
        }
        if (job.deadline &&
            std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
                *job.deadline) {
          out.expired = true;
          live[r] = 0;
          continue;
        }
        const std::uint64_t fkey = slice_fault_key(
            job.key, attempts[lane_of[r]], slice_index[r]);
        if (plan != nullptr &&
            plan->fires(util::FaultSite::kWorkerCrashBeforeSlice, fkey)) {
          // The fault takes out this lane only; it re-queues as a scalar
          // retry while the rest of the group keeps stepping.
          try {
            throw util::FaultInjected(
                util::FaultSite::kWorkerCrashBeforeSlice, fkey);
          } catch (...) {
            classify_current_exception(out);
          }
          live[r] = 0;
          continue;
        }
        if (plan != nullptr &&
            plan->fires(util::FaultSite::kSliceLatency, fkey)) {
          std::this_thread::sleep_for(to_duration(plan->latency_s()));
        }
        seconds[r] = std::min(kSliceSimSeconds, remaining[r]);
        any = true;
      }
      if (!any) {
        break;
      }
      runner.run(seconds);
      for (std::size_t r = 0; r < m; ++r) {
        if (seconds[r] <= 0.0) {
          continue;
        }
        ExecOutcome& out = outs[lane_of[r]];
        if (runner.lane_failed(r)) {
          // A guard trip (SimError) or any other engine exception retired
          // the lane inside the runner, without touching its siblings.
          try {
            runner.rethrow_lane_error(r);
          } catch (...) {
            classify_current_exception(out);
          }
          live[r] = 0;
          continue;
        }
        remaining[r] -= seconds[r];
        const std::uint64_t fkey = slice_fault_key(
            lanes[lane_of[r]]->key, attempts[lane_of[r]], slice_index[r]);
        if (plan != nullptr &&
            plan->fires(util::FaultSite::kWorkerCrashAfterSlice, fkey)) {
          try {
            throw util::FaultInjected(
                util::FaultSite::kWorkerCrashAfterSlice, fkey);
          } catch (...) {
            classify_current_exception(out);
          }
          live[r] = 0;
          continue;
        }
        ++slice_index[r];
      }
    }

    // Finalize the lanes that ran to completion (same final stop/deadline
    // re-check as execute(); payloads and cache inserts are per lane and
    // byte-identical to the scalar path).
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t k = lane_of[r];
      ExecOutcome& out = outs[k];
      if (live[r] == 0 || !out.error.empty() || out.cancelled ||
          out.expired) {
        continue;
      }
      const Job& job = *lanes[k];
      if (job.stop.load(std::memory_order_relaxed)) {
        out.cancelled = true;
        continue;
      }
      if (job.deadline &&
          std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
              *job.deadline) {
        out.expired = true;
        continue;
      }
      auto result = std::make_shared<JobResult>();
      result->metrics = taps[k].metrics(*engines[k]);
      result->report =
          sim::make_report(*engines[k], config_.metrics.temp_limit_c);
      result->payload = serialize_result(result->metrics, result->report);
      cache_.insert(job.key, job.canonical, result);
      out.result = std::move(result);
    }
  } catch (...) {
    // Group-level failure (e.g. runner construction); per-lane failures
    // never reach here. Attribute it to every lane still undecided.
    for (std::size_t r = 0; r < lane_of.size(); ++r) {
      ExecOutcome& out = outs[lane_of[r]];
      if (out.error.empty() && !out.cancelled && !out.expired &&
          out.result == nullptr) {
        classify_current_exception(out);
      }
    }
  }

  util::MutexLock lock(mutex_);
  for (std::size_t k = 0; k < n; ++k) {
    settle_locked(lanes[k], attempts[k], outs[k]);
  }
}

void SimService::classify_current_exception(ExecOutcome& out) {
  try {
    throw;
  } catch (const util::FaultInjected& e) {
    out.error = e.what();
    out.error_code = errc::kInjectedFault;
    out.fault_site = util::to_string(e.site());
    out.retryable = true;  // injected faults model transient worker deaths
  } catch (const sim::SimError& e) {
    out.error = e.what();
    out.error_code = e.code() == sim::SimErrorCode::kThermalRunaway
                         ? errc::kSimRunaway
                         : errc::kSimNonFinite;
  } catch (const std::exception& e) {
    out.error = e.what();
    out.error_code = errc::kInternal;
  } catch (...) {
    out.error = "unknown error";
    out.error_code = errc::kInternal;
  }
}

void SimService::settle_locked(const std::shared_ptr<Job>& job, int attempt,
                               ExecOutcome& out) {
  --running_;
  if (out.error.empty()) {
    if (out.cancelled) {
      finish_locked(job, JobState::kCancelled, "cancelled while running");
      job->error_code = errc::kCancelled;
    } else if (out.expired) {
      finish_locked(job, JobState::kExpired,
                    "deadline exceeded while running");
      job->error_code = errc::kDeadlineRunning;
    } else {
      job->result = out.result;
      // A success after retried attempts wipes the transient-failure
      // breadcrumbs; only `attempts` records that the road was bumpy.
      job->error_code.clear();
      job->fault_site.clear();
      finish_locked(job, JobState::kDone, "");
    }
    return;
  }

  job->error_code = out.error_code;
  job->fault_site = out.fault_site;
  if (out.retryable && attempt < config_.max_attempts && !shutting_down_ &&
      !job->stop.load(std::memory_order_relaxed)) {
    ++retry_count_;
    job->state = JobState::kQueued;
    job->error = out.error;  // last failure, visible while backing off
    const auto due =  // MOBILINT: nondet-ok (backoff timer, not sim state)
        std::chrono::steady_clock::now() +
        to_duration(retry_backoff_s(attempt, job->key));
    retries_.emplace(due, job);
    work_cv_.notify_one();
    return;
  }
  // Retries exhausted (or the failure is deterministic): degrade to a
  // stale cached result when we have one, else fail with the code intact.
  if (config_.serve_stale) {
    std::shared_ptr<const JobResult> stale =
        cache_.lookup_stale(job->key, job->canonical);
    if (stale) {
      job->result = std::move(stale);
      job->stale = true;
      job->from_cache = true;
      ++stale_served_;
      finish_locked(job, JobState::kDone, out.error);
      return;
    }
  }
  finish_locked(job, JobState::kFailed, out.error);
}

unsigned SimService::resolved_batch_width() const {
  return config_.batch_width == 0 ? sim::kDefaultLockstepWidth
                                  : config_.batch_width;
}

double SimService::retry_backoff_s(int attempt, std::uint64_t key) const {
  double backoff = config_.retry_backoff_s;
  for (int i = 1; i < attempt; ++i) {
    backoff *= 2.0;
  }
  backoff = std::min(backoff, config_.retry_backoff_max_s);
  if (config_.faults != nullptr) {
    backoff *= config_.faults->jitter(
        util::derive_seed(key, static_cast<std::uint64_t>(attempt)));
  }
  return backoff;
}

bool SimService::expire_if_overdue_locked(const std::shared_ptr<Job>& job) {
  if (job->state != JobState::kQueued || !job->deadline) {
    return false;
  }
  if (std::chrono::steady_clock::now() <  // MOBILINT: nondet-ok
      *job->deadline) {
    return false;
  }
  finish_locked(job, JobState::kExpired, "deadline exceeded while queued");
  job->error_code = errc::kDeadlineQueued;
  return true;
}

void SimService::finish_locked(const std::shared_ptr<Job>& job,
                               JobState state, const std::string& error) {
  job->state = state;
  job->error = error;
  switch (state) {
    case JobState::kDone:
      ++completed_;
      break;
    case JobState::kFailed:
      ++failed_;
      break;
    case JobState::kCancelled:
      ++cancelled_;
      break;
    case JobState::kExpired:
      ++expired_;
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  done_cv_.notify_all();
}

}  // namespace mobitherm::service
