#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "sim/report.h"
#include "util/error.h"

namespace mobitherm::service {

namespace {

// Simulated seconds per engine slice. Slicing does not change results
// (run(1.0) twice == run(2.0), tick for tick); it only bounds how long a
// running job can overshoot its deadline.
constexpr double kSliceSimSeconds = 1.0;

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

SimService::SimService(ScenarioRegistry registry, ServiceConfig config)
    : registry_(std::move(registry)),
      config_(config),
      cache_(config.cache_capacity) {
  if (config_.workers == 0) {
    throw util::ConfigError("SimService: workers must be positive");
  }
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimService::~SimService() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state == JobState::kQueued) {
        finish_locked(job, JobState::kCancelled, "service shutdown");
      } else if (job->state == JobState::kRunning) {
        job->stop.store(true, std::memory_order_relaxed);
      }
    }
    queue_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

SubmitOutcome SimService::submit(const SimRequest& request,
                                 double deadline_s) {
  SimRequest resolved;
  std::string canonical;
  try {
    resolved = registry_.resolve(request);
    canonical = registry_.canonical_key(resolved);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = e.what();
    return out;
  }
  const std::uint64_t key = fnv1a64(canonical);
  std::shared_ptr<const JobResult> cached = cache_.lookup(key, canonical);

  std::lock_guard<std::mutex> lock(mutex_);
  if (shutting_down_) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "service is shutting down";
    return out;
  }
  if (!cached && queue_.size() >= config_.queue_capacity) {
    ++rejected_;
    SubmitOutcome out;
    out.reject_reason = "queue full (" + std::to_string(queue_.size()) +
                        " jobs pending, capacity " +
                        std::to_string(config_.queue_capacity) + ")";
    return out;
  }

  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->resolved = resolved;
  job->key = key;
  job->canonical = canonical;
  jobs_[job->id] = job;
  ++submitted_;

  SubmitOutcome out;
  out.accepted = true;
  out.id = job->id;

  if (cached) {
    job->from_cache = true;
    job->result = std::move(cached);
    finish_locked(job, JobState::kDone, "");
    out.cached = true;
    return out;
  }

  const double effective_deadline =
      deadline_s < 0.0 ? config_.default_deadline_s : deadline_s;
  if (effective_deadline > 0.0) {
    // Wall-clock enters here only: deadlines bound *when* a job may
    // finish, never what a finished job computes.
    job->deadline =  // MOBILINT: nondet-ok (admission deadline, not sim state)
        std::chrono::steady_clock::now() + to_duration(effective_deadline);
  }
  queue_.push_back(job);
  work_cv_.notify_one();
  return out;
}

std::optional<JobStatus> SimService::status(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  const std::shared_ptr<Job>& job = it->second;
  expire_if_overdue_locked(job);
  JobStatus s;
  s.id = job->id;
  s.state = job->state;
  s.from_cache = job->from_cache;
  s.error = job->error;
  s.canonical = job->canonical;
  return s;
}

std::shared_ptr<const JobResult> SimService::result(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kDone) {
    return nullptr;
  }
  return it->second->result;
}

bool SimService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  const std::shared_ptr<Job>& job = it->second;
  if (is_terminal(job->state)) {
    return false;
  }
  if (job->state == JobState::kQueued) {
    // The worker skips non-queued jobs when it pops them, so the stale
    // queue entry is harmless.
    finish_locked(job, JobState::kCancelled, "cancelled while queued");
    return true;
  }
  // Running: the worker observes the token at its next tick and finishes
  // the job as kCancelled. Best effort — a job that completes before the
  // next check finishes kDone.
  job->stop.store(true, std::memory_order_relaxed);
  return true;
}

bool SimService::wait(std::uint64_t id, double timeout_s) {
  const auto wait_deadline =  // MOBILINT: nondet-ok (caller timeout)
      std::chrono::steady_clock::now() + to_duration(std::max(0.0, timeout_s));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      return false;
    }
    const std::shared_ptr<Job> job = it->second;
    expire_if_overdue_locked(job);
    if (is_terminal(job->state)) {
      return true;
    }
    const auto now = std::chrono::steady_clock::now();  // MOBILINT: nondet-ok
    if (now >= wait_deadline) {
      return false;
    }
    // Bounded wait so queued-job deadlines are noticed promptly even
    // without completion notifications.
    auto step = wait_deadline - now;
    if (job->deadline && *job->deadline > now) {
      step = std::min(step, *job->deadline - now);
    }
    step = std::min(step, to_duration(0.05));
    done_cv_.wait_for(lock, step);
  }
}

ServiceStats SimService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.expired = expired_;
    s.queued = queue_.size();
    s.running = running_;
  }
  s.workers = config_.workers;
  s.queue_capacity = config_.queue_capacity;
  s.cache = cache_.stats();
  return s;
}

void SimService::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock,
                    [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_) {
        return;  // queued jobs were already cancelled by the destructor
      }
      job = queue_.front();
      queue_.pop_front();
      if (job->state != JobState::kQueued) {
        continue;  // cancelled or lazily expired while queued
      }
      if (expire_if_overdue_locked(job)) {
        continue;
      }
      job->state = JobState::kRunning;
      ++running_;
    }
    execute(job);
  }
}

void SimService::execute(const std::shared_ptr<Job>& job) {
  std::shared_ptr<JobResult> result;
  bool cancelled = false;
  bool expired = false;
  std::string error;
  try {
    std::unique_ptr<sim::Engine> engine = registry_.make_engine(job->resolved);
    sim::MetricsObserver tap(config_.metrics);
    engine->add_observer(&tap);
    double remaining = job->resolved.duration_s;
    while (remaining > 0.0) {
      if (job->stop.load(std::memory_order_relaxed)) {
        cancelled = true;
        break;
      }
      if (job->deadline &&
          std::chrono::steady_clock::now() >=  // MOBILINT: nondet-ok
              *job->deadline) {
        expired = true;
        break;
      }
      const double slice = std::min(kSliceSimSeconds, remaining);
      engine->run(slice, &job->stop);
      remaining -= slice;
    }
    if (!expired && job->stop.load(std::memory_order_relaxed)) {
      cancelled = true;
    }
    if (!cancelled && !expired) {
      result = std::make_shared<JobResult>();
      result->metrics = tap.metrics(*engine);
      result->report = sim::make_report(*engine, config_.metrics.temp_limit_c);
      result->payload = serialize_result(result->metrics, result->report);
      cache_.insert(job->key, job->canonical, result);
    }
  } catch (const std::exception& e) {
    error = e.what();
  } catch (...) {
    error = "unknown error";
  }

  std::lock_guard<std::mutex> lock(mutex_);
  --running_;
  if (!error.empty()) {
    finish_locked(job, JobState::kFailed, error);
  } else if (cancelled) {
    finish_locked(job, JobState::kCancelled, "cancelled while running");
  } else if (expired) {
    finish_locked(job, JobState::kExpired, "deadline exceeded while running");
  } else {
    job->result = result;
    finish_locked(job, JobState::kDone, "");
  }
}

bool SimService::expire_if_overdue_locked(const std::shared_ptr<Job>& job) {
  if (job->state != JobState::kQueued || !job->deadline) {
    return false;
  }
  if (std::chrono::steady_clock::now() <  // MOBILINT: nondet-ok
      *job->deadline) {
    return false;
  }
  finish_locked(job, JobState::kExpired, "deadline exceeded while queued");
  return true;
}

void SimService::finish_locked(const std::shared_ptr<Job>& job,
                               JobState state, const std::string& error) {
  job->state = state;
  job->error = error;
  switch (state) {
    case JobState::kDone:
      ++completed_;
      break;
    case JobState::kFailed:
      ++failed_;
      break;
    case JobState::kCancelled:
      ++cancelled_;
      break;
    case JobState::kExpired:
      ++expired_;
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      break;
  }
  done_cv_.notify_all();
}

}  // namespace mobitherm::service
