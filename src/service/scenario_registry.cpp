#include "service/scenario_registry.h"

#include <algorithm>

#include "service/json.h"
#include "sim/experiment.h"
#include "util/error.h"
#include "workload/presets.h"

namespace mobitherm::service {

using util::ConfigError;

workload::AppSpec workload_by_name(const std::string& name, int levels,
                                   double phase_s) {
  if (name == "paperio") {
    return workload::paperio();
  }
  if (name == "stickman_hook") {
    return workload::stickman_hook();
  }
  if (name == "amazon") {
    return workload::amazon();
  }
  if (name == "hangouts") {
    return workload::hangouts();
  }
  if (name == "facebook") {
    return workload::facebook();
  }
  if (name == "youtube") {
    return workload::youtube();
  }
  if (name == "navigation") {
    return workload::navigation();
  }
  if (name == "threedmark") {
    return phase_s > 0.0 ? workload::threedmark(phase_s)
                         : workload::threedmark();
  }
  if (name == "nenamark") {
    if (levels > 0 && phase_s > 0.0) {
      return workload::nenamark(levels, phase_s);
    }
    if (levels > 0) {
      return workload::nenamark(levels);
    }
    return workload::nenamark();
  }
  if (name == "bml") {
    return workload::bml();
  }
  throw ConfigError("service: unknown workload '" + name + "'");
}

bool workload_is_parameterized(const std::string& name) {
  return name == "threedmark" || name == "nenamark";
}

const std::vector<std::string>& nexus_app_names() {
  static const std::vector<std::string> names = {
      "paperio", "stickman_hook", "amazon", "hangouts", "facebook"};
  return names;
}

void ScenarioRegistry::add(Entry entry) {
  if (entry.name.empty()) {
    throw ConfigError("ScenarioRegistry: entry name must be non-empty");
  }
  if (!entry.factory) {
    throw ConfigError("ScenarioRegistry: entry '" + entry.name +
                      "' has no factory");
  }
  entries_[entry.name] = std::move(entry);
}

bool ScenarioRegistry::has(const std::string& name) const {
  return entries_.count(name) != 0;
}

const ScenarioRegistry::Entry& ScenarioRegistry::at(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw ConfigError("ScenarioRegistry: unknown scenario '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

SimRequest ScenarioRegistry::resolve(const SimRequest& request) const {
  const Entry& entry = at(request.scenario);
  SimRequest r = request;
  if (r.app.empty()) {
    r.app = entry.default_app;
  }
  if (r.policy.empty()) {
    r.policy = entry.default_policy;
  }
  if (r.duration_s < 0.0) {
    r.duration_s = entry.default_duration_s;
  }
  if (r.initial_temp_c == SimRequest::kUnsetTemp) {
    r.initial_temp_c = entry.default_initial_temp_c;
  }
  if (!entry.policies.empty() &&
      std::find(entry.policies.begin(), entry.policies.end(), r.policy) ==
          entry.policies.end()) {
    throw ConfigError("service: scenario '" + entry.name +
                      "' does not accept policy '" + r.policy + "'");
  }
  // Validates the app name; result discarded.
  workload_by_name(r.app);
  if (!workload_is_parameterized(r.app)) {
    r.app_levels = -1;
    r.app_phase_s = -1.0;
  }
  if (r.duration_s <= 0.0) {
    throw ConfigError("service: request duration must be positive");
  }
  return r;
}

std::string ScenarioRegistry::canonical_key(const SimRequest& request) const {
  const SimRequest r = resolve(request);
  const Entry& entry = at(r.scenario);
  std::string key;
  key.reserve(160);
  key += "v=";
  key += kSimCodeVersion;
  key += ";scenario=";
  key += r.scenario;
  key += ";platform=";
  key += entry.platform;
  key += ";app=";
  key += r.app;
  key += ";policy=";
  key += r.policy;
  key += ";bml=";
  key += r.with_bml ? '1' : '0';
  key += ";levels=";
  key += std::to_string(r.app_levels);
  key += ";phase_s=";
  key += json::format_number(r.app_phase_s);
  key += ";duration_s=";
  key += json::format_number(r.duration_s);
  key += ";initial_temp_c=";
  key += json::format_number(r.initial_temp_c);
  key += ";seed=";
  key += std::to_string(r.seed);
  return key;
}

std::uint64_t ScenarioRegistry::request_hash(
    const SimRequest& request) const {
  return fnv1a64(canonical_key(request));
}

std::unique_ptr<sim::Engine> ScenarioRegistry::make_engine(
    const SimRequest& request) const {
  const SimRequest r = resolve(request);
  std::unique_ptr<sim::Engine> engine = at(r.scenario).factory(r);
  if (!engine) {
    throw ConfigError("ScenarioRegistry: scenario '" + r.scenario +
                      "' factory returned a null engine");
  }
  return engine;
}

ScenarioRegistry ScenarioRegistry::standard() {
  ScenarioRegistry registry;

  Entry nexus;
  nexus.name = "nexus";
  nexus.description =
      "Nexus 6P (Sec. III): one app for 140 s, step_wise throttling on or "
      "off";
  nexus.platform = "snapdragon810";
  nexus.default_duration_s = 140.0;
  nexus.default_initial_temp_c = 36.0;
  nexus.default_app = "paperio";
  nexus.default_policy = "throttled";
  nexus.policies = {"throttled", "unthrottled"};
  nexus.factory = [](const SimRequest& r) {
    sim::NexusRun run;
    run.app = workload_by_name(r.app, r.app_levels, r.app_phase_s);
    run.throttling = r.policy == "throttled";
    run.duration_s = r.duration_s;
    run.initial_temp_c = r.initial_temp_c;
    run.seed = r.seed;
    return sim::make_nexus_engine(run);
  };
  registry.add(std::move(nexus));

  Entry odroid;
  odroid.name = "odroid";
  odroid.description =
      "Odroid-XU3 (Sec. IV-C): foreground GPU benchmark, optional BML "
      "background task, none/default/proposed thermal policy";
  odroid.platform = "exynos5422";
  odroid.default_duration_s = 250.0;
  odroid.default_initial_temp_c = 50.0;
  odroid.default_app = "threedmark";
  odroid.default_policy = "default";
  odroid.policies = {"none", "default", "proposed"};
  odroid.factory = [](const SimRequest& r) {
    sim::OdroidRun run;
    run.foreground = workload_by_name(r.app, r.app_levels, r.app_phase_s);
    run.with_bml = r.with_bml;
    if (r.policy == "none") {
      run.policy = sim::ThermalPolicy::kNone;
    } else if (r.policy == "proposed") {
      run.policy = sim::ThermalPolicy::kProposed;
    } else {
      run.policy = sim::ThermalPolicy::kDefault;
    }
    run.duration_s = r.duration_s;
    run.initial_temp_c = r.initial_temp_c;
    run.seed = r.seed;
    return sim::make_odroid_engine(run);
  };
  registry.add(std::move(odroid));

  return registry;
}

const ScenarioRegistry& standard_registry() {
  static const ScenarioRegistry registry = ScenarioRegistry::standard();
  return registry;
}

}  // namespace mobitherm::service
