#include "service/scenario_registry.h"

#include <algorithm>

#include "power/model_registry.h"
#include "service/json.h"
#include "sim/experiment.h"
#include "stability/model_analysis.h"
#include "stability/presets.h"
#include "util/error.h"
#include "util/units.h"
#include "workload/presets.h"

namespace mobitherm::service {

using util::ConfigError;

workload::AppSpec workload_by_name(const std::string& name, int levels,
                                   double phase_s) {
  if (name == "paperio") {
    return workload::paperio();
  }
  if (name == "stickman_hook") {
    return workload::stickman_hook();
  }
  if (name == "amazon") {
    return workload::amazon();
  }
  if (name == "hangouts") {
    return workload::hangouts();
  }
  if (name == "facebook") {
    return workload::facebook();
  }
  if (name == "youtube") {
    return workload::youtube();
  }
  if (name == "navigation") {
    return workload::navigation();
  }
  if (name == "threedmark") {
    return phase_s > 0.0 ? workload::threedmark(phase_s)
                         : workload::threedmark();
  }
  if (name == "nenamark") {
    if (levels > 0 && phase_s > 0.0) {
      return workload::nenamark(levels, phase_s);
    }
    if (levels > 0) {
      return workload::nenamark(levels);
    }
    return workload::nenamark();
  }
  if (name == "bml") {
    return workload::bml();
  }
  throw ConfigError("service: unknown workload '" + name + "'");
}

bool workload_is_parameterized(const std::string& name) {
  return name == "threedmark" || name == "nenamark";
}

const std::vector<std::string>& nexus_app_names() {
  static const std::vector<std::string> names = {
      "paperio", "stickman_hook", "amazon", "hangouts", "facebook"};
  return names;
}

namespace {

/// Lumped dynamics calibration for the platforms the standard registry
/// wires; nullptr for platforms without a Sec. IV-A calibration (custom
/// test entries), which keep the configured guard as-is.
const stability::Params* lumped_params_for_platform(
    const std::string& platform) {
  if (platform == "snapdragon810") {
    static const stability::Params params = stability::nexus6p_params();
    return &params;
  }
  if (platform == "exynos5422") {
    static const stability::Params params = stability::odroid_xu3_params();
    return &params;
  }
  return nullptr;
}

power::LeakageParams baseline_leakage_for_platform(
    const std::string& platform) {
  if (platform == "snapdragon810") {
    return sim::nexus_baseline_leakage();
  }
  if (platform == "exynos5422") {
    return sim::odroid_baseline_leakage();
  }
  throw ConfigError("service: no baseline leakage calibration for '" +
                    platform + "'");
}

}  // namespace

void ScenarioRegistry::add(Entry entry) {
  if (entry.name.empty()) {
    throw ConfigError("ScenarioRegistry: entry name must be non-empty");
  }
  if (!entry.factory) {
    throw ConfigError("ScenarioRegistry: entry '" + entry.name +
                      "' has no factory");
  }
  entries_[entry.name] = std::move(entry);
}

bool ScenarioRegistry::has(const std::string& name) const {
  return entries_.count(name) != 0;
}

const ScenarioRegistry::Entry& ScenarioRegistry::at(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw ConfigError("ScenarioRegistry: unknown scenario '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

void ScenarioRegistry::attach_packs(
    std::shared_ptr<const workload::PackSet> packs) {
  packs_ = std::move(packs);
}

SimRequest ScenarioRegistry::resolve(const SimRequest& request) const {
  const Entry& entry = at(request.scenario);
  SimRequest r = request;
  if (r.app.empty()) {
    r.app = entry.default_app;
  }
  if (r.policy.empty()) {
    r.policy = entry.default_policy;
  }
  if (r.power_model.empty()) {
    r.power_model = power::kBaselineModelName;
  }
  if (r.duration_s < 0.0) {
    r.duration_s = entry.default_duration_s;
  }
  if (r.initial_temp_c == SimRequest::kUnsetTemp) {
    r.initial_temp_c = entry.default_initial_temp_c;
  }
  if (!entry.policies.empty() &&
      std::find(entry.policies.begin(), entry.policies.end(), r.policy) ==
          entry.policies.end()) {
    throw ConfigError("service: scenario '" + entry.name +
                      "' does not accept policy '" + r.policy + "'");
  }
  if (!power::standard_model_registry().has(r.power_model)) {
    throw ConfigError("service: unknown power model '" + r.power_model +
                      "'");
  }
  if (r.app.find('/') != std::string::npos) {
    if (packs_ == nullptr || packs_->find_app(r.app) == nullptr) {
      throw ConfigError("service: unknown pack workload '" + r.app + "'");
    }
    // Pack apps carry their full shape in the pack; the preset overrides
    // never apply.
    r.app_levels = -1;
    r.app_phase_s = -1.0;
  } else {
    // Validates the app name; result discarded.
    workload_by_name(r.app);
    if (!workload_is_parameterized(r.app)) {
      r.app_levels = -1;
      r.app_phase_s = -1.0;
    }
  }
  if (r.duration_s <= 0.0) {
    throw ConfigError("service: request duration must be positive");
  }
  return r;
}

workload::AppSpec ScenarioRegistry::app_spec(
    const SimRequest& resolved) const {
  if (resolved.app.find('/') != std::string::npos) {
    if (packs_ != nullptr) {
      if (const workload::AppSpec* spec = packs_->find_app(resolved.app)) {
        return *spec;
      }
    }
    throw ConfigError("service: unknown pack workload '" + resolved.app +
                      "'");
  }
  return workload_by_name(resolved.app, resolved.app_levels,
                          resolved.app_phase_s);
}

std::vector<std::string> ScenarioRegistry::apps_for(
    const std::string& scenario) const {
  const Entry& entry = at(scenario);
  std::vector<std::string> out = entry.apps;
  if (packs_ != nullptr) {
    for (const std::string& name : packs_->qualified_app_names()) {
      out.push_back(name);
    }
  }
  return out;
}

std::string ScenarioRegistry::canonical_key(const SimRequest& request) const {
  const SimRequest r = resolve(request);
  const Entry& entry = at(r.scenario);
  std::string key;
  key.reserve(192);
  key += "v=";
  key += kSimCodeVersion;
  key += ";scenario=";
  key += r.scenario;
  key += ";platform=";
  key += entry.platform;
  key += ";app=";
  key += r.app;
  if (r.app.find('/') != std::string::npos) {
    // packs_ was validated by resolve(); the hash pins the pack *content*
    // so editing a pack field can never serve a stale cached result.
    key += ";pack=";
    key += packs_->pack_of(r.app)->content_hash_hex();
  }
  key += ";policy=";
  key += r.policy;
  key += ";model=";
  key += r.power_model;
  key += ";bml=";
  key += r.with_bml ? '1' : '0';
  key += ";levels=";
  key += std::to_string(r.app_levels);
  key += ";phase_s=";
  key += json::format_number(r.app_phase_s);
  key += ";duration_s=";
  key += json::format_number(r.duration_s);
  key += ";initial_temp_c=";
  key += json::format_number(r.initial_temp_c);
  key += ";seed=";
  key += std::to_string(r.seed);
  return key;
}

std::uint64_t ScenarioRegistry::request_hash(
    const SimRequest& request) const {
  return fnv1a64(canonical_key(request));
}

std::unique_ptr<sim::Engine> ScenarioRegistry::make_engine(
    const SimRequest& request) const {
  const SimRequest r = resolve(request);
  std::unique_ptr<sim::Engine> engine =
      at(r.scenario).factory(r, app_spec(r));
  if (!engine) {
    throw ConfigError("ScenarioRegistry: scenario '" + r.scenario +
                      "' factory returned a null engine");
  }
  return engine;
}

double ScenarioRegistry::runaway_guard_temp_k(
    const SimRequest& request, double config_guard_c) const {
  const double config_guard_k = util::celsius_to_kelvin(config_guard_c);
  const SimRequest r = resolve(request);
  if (r.power_model == power::kBaselineModelName) {
    // The configured guard *is* the baseline model's Sec. IV-A-calibrated
    // threshold; keep it bit-exactly.
    return config_guard_k;
  }
  const Entry& entry = at(r.scenario);
  const stability::Params* base = lumped_params_for_platform(entry.platform);
  if (base == nullptr) {
    return config_guard_k;
  }
  const power::LeakageParams leakage =
      power::standard_model_registry().leakage_for(
          r.power_model, baseline_leakage_for_platform(entry.platform));
  try {
    // Point of no return with zero dynamic power: above it, this model's
    // dynamics diverge no matter what the governor does, so simulating
    // past it is wasted work for any guard at or above it.
    const double no_return_k =
        stability::model_no_return_temp_k(*base, leakage, /*p_dyn_w=*/0.0);
    return std::min(config_guard_k, no_return_k);
  } catch (const util::NumericError&) {
    // Model unstable even at zero power; the configured ceiling stands.
    return config_guard_k;
  }
}

ScenarioRegistry ScenarioRegistry::standard() {
  ScenarioRegistry registry;

  Entry nexus;
  nexus.name = "nexus";
  nexus.description =
      "Nexus 6P (Sec. III): one app for 140 s, step_wise throttling on or "
      "off";
  nexus.platform = "snapdragon810";
  nexus.default_duration_s = 140.0;
  nexus.default_initial_temp_c = 36.0;
  nexus.default_app = "paperio";
  nexus.default_policy = "throttled";
  nexus.policies = {"throttled", "unthrottled"};
  nexus.apps = {"paperio", "stickman_hook", "amazon", "hangouts",
                "facebook", "youtube",       "navigation"};
  nexus.factory = [](const SimRequest& r, const workload::AppSpec& app) {
    sim::NexusRun run;
    run.app = app;
    run.throttling = r.policy == "throttled";
    run.duration_s = r.duration_s;
    run.initial_temp_c = r.initial_temp_c;
    run.seed = r.seed;
    run.leakage = power::standard_model_registry().leakage_for(
        r.power_model, sim::nexus_baseline_leakage());
    return sim::make_nexus_engine(run);
  };
  registry.add(std::move(nexus));

  Entry odroid;
  odroid.name = "odroid";
  odroid.description =
      "Odroid-XU3 (Sec. IV-C): foreground GPU benchmark, optional BML "
      "background task, none/default/proposed thermal policy";
  odroid.platform = "exynos5422";
  odroid.default_duration_s = 250.0;
  odroid.default_initial_temp_c = 50.0;
  odroid.default_app = "threedmark";
  odroid.default_policy = "default";
  odroid.policies = {"none", "default", "proposed"};
  odroid.apps = {"threedmark", "nenamark"};
  odroid.factory = [](const SimRequest& r, const workload::AppSpec& app) {
    sim::OdroidRun run;
    run.foreground = app;
    run.with_bml = r.with_bml;
    if (r.policy == "none") {
      run.policy = sim::ThermalPolicy::kNone;
    } else if (r.policy == "proposed") {
      run.policy = sim::ThermalPolicy::kProposed;
    } else {
      run.policy = sim::ThermalPolicy::kDefault;
    }
    run.duration_s = r.duration_s;
    run.initial_temp_c = r.initial_temp_c;
    run.seed = r.seed;
    run.leakage = power::standard_model_registry().leakage_for(
        r.power_model, sim::odroid_baseline_leakage());
    return sim::make_odroid_engine(run);
  };
  registry.add(std::move(odroid));

  return registry;
}

const ScenarioRegistry& standard_registry() {
  static const ScenarioRegistry registry = ScenarioRegistry::standard();
  return registry;
}

}  // namespace mobitherm::service
