// SimService: the long-lived request-serving layer over the sim core.
//
// Combines the three service pieces into one admission-controlled
// pipeline:
//
//   submit(request)
//     -> resolve against the ScenarioRegistry (reject unknown requests)
//     -> cache lookup by canonical-request hash (hit: done immediately,
//        byte-identical payload, zero simulation work)
//     -> bounded job queue (full: reject with a reason — backpressure is
//        explicit, the queue never grows without bound)
//   worker pool (N threads)
//     -> builds the engine from the registry, runs it in one-simulated-
//        second slices, honoring the per-job deadline and the cooperative
//        cancellation token (checked every tick inside Engine::run)
//     -> summarizes (RunMetrics + RunReport), serializes the canonical
//        payload, stores it in the LRU result cache
//
// Determinism note: job *results* are pure functions of the canonical
// request. Queueing order, worker interleaving, deadlines and wall-clock
// timings are inherently nondeterministic — they affect only *whether/when*
// a job completes, never what a completed job computes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/result_cache.h"
#include "service/scenario_registry.h"
#include "sim/metrics.h"

namespace mobitherm::service {

struct ServiceConfig {
  /// Worker threads running simulations.
  unsigned workers = 1;
  /// Maximum jobs waiting in the queue (excluding running ones); a submit
  /// that would exceed it is rejected with a reason.
  std::size_t queue_capacity = 16;
  /// Result-cache capacity (entries); 0 disables caching.
  std::size_t cache_capacity = 64;
  /// Default per-job deadline (wall seconds from submit); <= 0 = none.
  double default_deadline_s = 0.0;
  /// Summary options applied to every job.
  sim::MetricsOptions metrics;
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,     // scenario factory / summarization threw
  kCancelled,  // cancel() or service shutdown
  kExpired,    // deadline passed while queued or running
};

const char* to_string(JobState state);

/// True for states a job can never leave.
bool is_terminal(JobState state);

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;      // valid when accepted
  bool cached = false;       // served from the result cache (already done)
  std::string reject_reason; // set when !accepted
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  bool from_cache = false;
  std::string error;      // failure/expiry/cancel detail
  std::string canonical;  // canonical request key
};

struct ServiceStats {
  std::size_t submitted = 0;   // accepted submissions (incl. cache hits)
  std::size_t rejected = 0;    // backpressure or invalid requests
  std::size_t completed = 0;   // kDone jobs, incl. cache-served ones
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t expired = 0;
  std::size_t queued = 0;      // current depth
  std::size_t running = 0;     // currently simulating
  unsigned workers = 0;
  std::size_t queue_capacity = 0;
  CacheStats cache;
};

class SimService {
 public:
  explicit SimService(ScenarioRegistry registry, ServiceConfig config = {});

  /// Cancels queued and running jobs, then joins the workers.
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Admit a request. An invalid request (unknown scenario/app/policy) or
  /// a full queue rejects with a reason; a cache hit completes the job
  /// immediately. `deadline_s` < 0 uses the config default.
  SubmitOutcome submit(const SimRequest& request, double deadline_s = -1.0);

  /// Snapshot of a job's state; nullopt for unknown ids. Lazily expires
  /// queued jobs whose deadline has passed.
  std::optional<JobStatus> status(std::uint64_t id);

  /// The job's result; nullptr unless the job is kDone.
  std::shared_ptr<const JobResult> result(std::uint64_t id) const;

  /// Request cancellation. Queued jobs cancel immediately; running jobs
  /// stop at their next tick. Returns false for unknown or already
  /// terminal jobs.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state or `timeout_s` elapses.
  /// Returns true when terminal.
  bool wait(std::uint64_t id, double timeout_s);

  ServiceStats stats() const;

  const ScenarioRegistry& registry() const { return registry_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Job {
    std::uint64_t id = 0;
    SimRequest resolved;
    std::uint64_t key = 0;
    std::string canonical;
    JobState state = JobState::kQueued;
    bool from_cache = false;
    std::string error;
    std::shared_ptr<const JobResult> result;
    std::atomic<bool> stop{false};
    /// Wall-clock deadline; nullopt = none.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  void worker_loop();
  void execute(const std::shared_ptr<Job>& job);

  /// Must hold mutex_. Moves a queued job past its deadline to kExpired
  /// (the worker skips non-queued jobs on pop); returns true if it
  /// expired.
  bool expire_if_overdue_locked(const std::shared_ptr<Job>& job);

  /// Must hold mutex_. Terminal-state bookkeeping + waiter wakeup.
  void finish_locked(const std::shared_ptr<Job>& job, JobState state,
                     const std::string& error);

  ScenarioRegistry registry_;
  ServiceConfig config_;
  ResultCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: queue / shutdown
  std::condition_variable done_cv_;  // waiters: job completion
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_;
  std::uint64_t next_id_ = 1;
  bool shutting_down_ = false;

  // Counters guarded by mutex_.
  std::size_t submitted_ = 0;
  std::size_t rejected_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t expired_ = 0;
  std::size_t running_ = 0;

  std::vector<std::thread> workers_;
};

}  // namespace mobitherm::service
