// SimService: the long-lived request-serving layer over the sim core.
//
// Combines the three service pieces into one admission-controlled
// pipeline:
//
//   submit(request)
//     -> resolve against the ScenarioRegistry (reject unknown requests)
//     -> cache lookup by canonical-request hash (hit: done immediately,
//        byte-identical payload, zero simulation work)
//     -> bounded job queue (full: serve a stale cached result when one
//        exists, else reject with a reason — backpressure is explicit,
//        the queue never grows without bound)
//   worker pool (N threads)
//     -> builds the engine from the registry, runs it in one-simulated-
//        second slices, honoring the per-job deadline and the cooperative
//        cancellation token (checked every tick inside Engine::run, and
//        again after the final partial slice)
//     -> summarizes (RunMetrics + RunReport), serializes the canonical
//        payload, stores it in the LRU result cache
//
// Graceful degradation (PR 5): transient failures (the FaultPlan's
// injected crashes — the stand-in for real worker deaths) are retried with
// exponential backoff, deterministic jitter and a bounded attempt budget;
// when retries are exhausted, or the queue is saturated, a previously
// evicted cache entry is served marked `stale` rather than failing the
// job. Deterministic failures (sim::SimError numerical guards, config
// errors) are never retried — a pure function that failed once fails
// again. Every failure carries a machine-readable code, the fault site and
// the attempt count.
//
// Compare jobs (PR 9): submit_compare() admits a best-arm policy
// comparison (sim/compare.h) as one job. A worker runs it round by round
// over a shared deterministic seed schedule, each per-(arm, seed) lane
// executing as sliced work — cooperative with the job's deadline and
// cancellation token exactly like submit — and consulting the pure
// decide_best_arm() decision after every round. Lanes are cached under
// the same canonical keys a direct submit of that (arm, seed) request
// would use, so refinement re-runs and overlapping comparisons are nearly
// free, and the verdict payload itself is cached under the compare
// canonical key. The verdict is a pure function of the ordered per-seed
// results: replays are byte-identical at any worker count, shard count or
// injected-fault schedule.
//
// Wide jobs (this PR): submit_many() admits a fan of seeds in one call.
// Cache-missing lanes are packed into lockstep groups that a single worker
// executes through sim::LockstepRunner — K engines stepped together with
// the thermal physics fused into one SoA block step. Per-lane cache keys
// and payloads are byte-identical to scalar execution; a lane that faults
// is retried alone on the scalar path, so the degradation machinery below
// applies per lane, not per group.
//
// Determinism note: job *results* are pure functions of the canonical
// request. Queueing order, worker interleaving, deadlines and wall-clock
// timings are inherently nondeterministic — they affect only *whether/when*
// a job completes, never what a completed job computes. With a seeded
// FaultPlan, *which* failures are injected is likewise a pure function of
// (seed, site, request key, attempt), so fault schedules replay exactly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/result_cache.h"
#include "service/scenario_registry.h"
#include "sim/metrics.h"
#include "util/fault.h"
#include "util/sync.h"

namespace mobitherm::service {

/// Machine-readable error codes attached to rejections and failed jobs.
namespace errc {
inline constexpr const char* kInvalidRequest = "invalid_request";
inline constexpr const char* kQueueFull = "queue_full";
inline constexpr const char* kShuttingDown = "shutting_down";
inline constexpr const char* kInjectedFault = "injected_fault";
inline constexpr const char* kDeadlineQueued = "deadline_queued";
inline constexpr const char* kDeadlineRunning = "deadline_running";
inline constexpr const char* kCancelled = "cancelled";
inline constexpr const char* kSimRunaway = "sim_runaway";
inline constexpr const char* kSimNonFinite = "sim_non_finite";
inline constexpr const char* kInternal = "internal_error";
// Protocol-level codes used by the NDJSON server.
inline constexpr const char* kParseError = "parse_error";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownOp = "unknown_op";
inline constexpr const char* kUnknownJob = "unknown_job";
inline constexpr const char* kNotDone = "not_done";
inline constexpr const char* kOversizedLine = "oversized_line";
}  // namespace errc

struct ServiceConfig {
  /// Worker threads running simulations.
  unsigned workers = 1;
  /// Maximum jobs waiting in the queue (excluding running ones); a submit
  /// that would exceed it is rejected with a reason.
  std::size_t queue_capacity = 16;
  /// Result-cache capacity (entries); 0 disables caching.
  std::size_t cache_capacity = 64;
  /// Default per-job deadline (wall seconds from submit); <= 0 = none.
  double default_deadline_s = 0.0;
  /// Summary options applied to every job.
  sim::MetricsOptions metrics;

  /// Execution attempts per job (>= 1). Only transient failures
  /// (util::FaultInjected) consume retries; deterministic failures fail
  /// on the first attempt.
  int max_attempts = 3;
  /// Backoff before attempt k+1 is base * 2^(k-1), capped at max, then
  /// scaled by the FaultPlan's deterministic jitter in [0.5, 1.5).
  double retry_backoff_s = 0.05;
  double retry_backoff_max_s = 2.0;
  /// Serve checksum-clean *evicted* cache entries, marked stale, when the
  /// queue is saturated or a job exhausts its retries.
  bool serve_stale = true;
  /// Engine runaway guard applied to every job (degC); <= 0 disables.
  /// Healthy paper scenarios peak far below 150 degC, so the default only
  /// trips on genuinely divergent dynamics (Sec. IV-A).
  double guard_max_temp_c = 150.0;
  /// Deterministic fault injection; non-owning, nullptr = disabled (the
  /// plan must outlive the service).
  util::FaultPlan* faults = nullptr;

  /// Lanes per lockstep group for wide (multi-seed) jobs: submit_many()
  /// packs up to this many cache-missing seeds into one queue slot, and a
  /// worker executes the group through a sim::LockstepRunner (fused
  /// thermal stepping; per-lane results and cache payloads are
  /// bit-identical to scalar execution). 0 = auto (the sim layer's
  /// default width); 1 = force the scalar path lane by lane.
  unsigned batch_width = 0;
};

enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,     // scenario factory / summarization threw
  kCancelled,  // cancel() or service shutdown
  kExpired,    // deadline passed while queued or running
};

const char* to_string(JobState state);

/// True for states a job can never leave.
bool is_terminal(JobState state);

struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t id = 0;      // valid when accepted
  bool cached = false;       // served from the result cache (already done)
  bool stale = false;        // served from the stale store (degraded)
  std::string reject_reason; // set when !accepted
  std::string reject_code;   // errc::* code, set when !accepted
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  bool from_cache = false;
  bool stale = false;        // degraded completion from the stale store
  int attempts = 0;          // execution attempts consumed so far
  std::string error;         // failure/expiry/cancel detail
  std::string error_code;    // errc::* code ("" while healthy)
  std::string fault_site;    // injection site name when error_code is
                             // errc::kInjectedFault
  std::string canonical;     // canonical request key
};

struct ServiceStats {
  std::size_t submitted = 0;   // accepted submissions (incl. cache hits)
  std::size_t rejected = 0;    // backpressure or invalid requests
  std::size_t completed = 0;   // kDone jobs, incl. cache-served ones
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  std::size_t expired = 0;
  std::size_t retries = 0;       // re-queued attempts after failures
  std::size_t stale_served = 0;  // degraded completions from stale entries
  std::size_t queued = 0;      // current depth (incl. backoff waiters)
  /// Of `queued`, the jobs waiting out a retry backoff rather than in the
  /// admission queue proper — split out so saturation is diagnosable.
  std::size_t retry_backlog = 0;
  std::size_t running = 0;     // currently simulating
  /// Wide (multi-lane) groups dispatched to the lockstep path, and the
  /// total lanes they carried.
  std::size_t wide_jobs = 0;
  std::size_t lockstep_lanes = 0;
  /// Compare jobs admitted (incl. cache-served verdicts), decision rounds
  /// executed, per-(arm, seed) lane executions vs. cache-served lanes, and
  /// compares that stopped on CI separation before the seed budget.
  std::size_t compares = 0;
  std::size_t compare_rounds = 0;
  std::size_t compare_lane_runs = 0;
  std::size_t compare_lane_hits = 0;
  std::size_t compare_early_stops = 0;
  unsigned workers = 0;
  std::size_t queue_capacity = 0;
  /// Resolved lockstep lane width for wide jobs (1 = scalar path).
  unsigned batch_width = 0;
  /// Total injections fired by the attached FaultPlan (0 when none).
  std::uint64_t faults_injected = 0;
  CacheStats cache;
};

/// A request admitted past resolution: the canonical form, its key string
/// and the FNV-1a hash that both the result cache and the shard router
/// (service/shard.h) are keyed by. `valid` is false when resolution
/// failed; `error` then carries the reason.
struct PreparedRequest {
  SimRequest resolved;
  std::string canonical;
  std::uint64_t key = 0;
  bool valid = false;
  std::string error;
};

/// One arm of a policy comparison: a request variant plus its verdict
/// label. `request.seed` is ignored — the compare job's seed schedule
/// supplies every per-sample seed (common random numbers across arms).
struct CompareArmRequest {
  SimRequest request;
  /// Verdict label; empty derives "<policy>" (+"+bml") from resolution.
  std::string name;
};

/// A best-arm comparison (the service face of sim/compare.h): K arms
/// evaluated round by round on a shared seed schedule until the best
/// arm's confidence interval separates from every rival's or the per-arm
/// seed budget is exhausted.
struct CompareRequest {
  std::vector<CompareArmRequest> arms;  // >= 2
  /// Verdict metric: one of sim::compare_metric_names() ("median_fps",
  /// "peak_temp_c", "mean_power_w"); the metric fixes the direction.
  std::string metric = "median_fps";
  double confidence = 0.95;
  int max_seeds = 32;
  int round_seeds = 4;
  int min_seeds = 4;  // >= 2; no separation verdict before this
  std::uint64_t base_seed = 1;
};

/// A compare request admitted past resolution (compare analog of
/// PreparedRequest): arms resolved, names filled, and the compare
/// canonical key — which embeds every option and each arm's canonical
/// form — plus its FNV-1a hash (the verdict cache key and the shard
/// router's partition input).
struct PreparedCompare {
  CompareRequest spec;
  std::string canonical;
  std::uint64_t key = 0;
  bool valid = false;
  std::string error;
};

/// The service surface the NDJSON front end (server.h, net_server.h)
/// programs against. Implemented by SimService (one pool, one cache) and
/// ShardedService (shard.h: N share-nothing SimService shards behind one
/// id space). Virtual dispatch costs nothing next to parsing a request
/// line, and it lets every protocol test run unchanged against either.
class ServiceApi {
 public:
  virtual ~ServiceApi() = default;
  virtual SubmitOutcome submit(const SimRequest& request,
                               double deadline_s) = 0;
  virtual std::vector<SubmitOutcome> submit_many(const SimRequest& request,
                                                 std::size_t seeds,
                                                 double deadline_s) = 0;
  /// Admit a best-arm comparison as one job; the verdict is fetched with
  /// result() once the job is done (cached verdicts complete immediately).
  virtual SubmitOutcome submit_compare(const CompareRequest& request,
                                       double deadline_s = -1.0) = 0;
  virtual std::optional<JobStatus> status(std::uint64_t id) = 0;
  virtual std::shared_ptr<const JobResult> result(std::uint64_t id) const = 0;
  virtual bool cancel(std::uint64_t id) = 0;
  virtual bool wait(std::uint64_t id, double timeout_s) = 0;
  /// Fleet-wide rollup (for a single pool: its own counters).
  virtual ServiceStats stats() const = 0;
  /// Per-shard breakdown, in shard order; a single pool reports itself as
  /// shard 0. Sums to stats() field by field (capacities/widths repeat).
  virtual std::vector<ServiceStats> shard_stats() const = 0;
  virtual const ScenarioRegistry& registry() const = 0;
};

class SimService : public ServiceApi {
 public:
  explicit SimService(ScenarioRegistry registry, ServiceConfig config = {});

  /// Cancels queued and running jobs, then joins the workers.
  ~SimService();

  SimService(const SimService&) = delete;
  SimService& operator=(const SimService&) = delete;

  /// Admit a request. An invalid request (unknown scenario/app/policy) or
  /// a full queue rejects with a reason + code; a cache hit completes the
  /// job immediately; a full queue with a stale entry available completes
  /// immediately with `stale` set. `deadline_s` < 0 uses the config
  /// default.
  SubmitOutcome submit(const SimRequest& request,
                       double deadline_s = -1.0) override;

  /// Resolve + canonicalize + hash a request without admitting it; the
  /// shard router uses this to pick a shard before calling
  /// submit_prepared() so resolution happens exactly once per request.
  PreparedRequest prepare(const SimRequest& request) const;

  /// submit() for an already-prepared request (skips re-resolution). An
  /// invalid prepared request rejects with kInvalidRequest, like submit().
  SubmitOutcome submit_prepared(PreparedRequest prepared, double deadline_s);

  /// Admit an explicit list of prepared lanes (the wide path). Valid lanes
  /// that miss the cache are packed, in order, into lockstep groups of up
  /// to ServiceConfig::batch_width lanes, each occupying one queue slot;
  /// invalid lanes reject with kInvalidRequest. Outcomes in lane order.
  std::vector<SubmitOutcome> submit_prepared_lanes(
      std::vector<PreparedRequest> lanes, double deadline_s);

  /// Wide (multi-seed) admission: lane k is `request` with seed
  /// `request.seed + k`, admitted like submit() (cache hits complete
  /// immediately, per-lane stale/reject under backpressure). Lanes that
  /// miss the cache are packed into lockstep groups of up to
  /// ServiceConfig::batch_width lanes, each occupying ONE queue slot, and
  /// a worker runs the group on the lockstep multi-lane path — cache keys
  /// and result payloads are byte-identical to `seeds` scalar submits.
  /// Outcomes come back in lane order.
  std::vector<SubmitOutcome> submit_many(const SimRequest& request,
                                         std::size_t seeds,
                                         double deadline_s = -1.0) override;

  /// Admit a best-arm comparison. Admission mirrors submit(): a cached
  /// verdict completes the job immediately and byte-identically, a full
  /// queue degrades to a stale verdict or rejects, and the job then runs
  /// rounds of per-(arm, seed) lanes as sliced work under the usual
  /// deadline/cancellation/retry machinery.
  SubmitOutcome submit_compare(const CompareRequest& request,
                               double deadline_s = -1.0) override;

  /// Resolve + canonicalize + hash a comparison without admitting it (the
  /// shard router resolves once, then routes by the compare key).
  PreparedCompare prepare_compare(const CompareRequest& request) const;

  /// submit_compare() for an already-prepared comparison.
  SubmitOutcome submit_compare_prepared(PreparedCompare prepared,
                                        double deadline_s);

  /// Snapshot of a job's state; nullopt for unknown ids. Lazily expires
  /// queued jobs whose deadline has passed.
  std::optional<JobStatus> status(std::uint64_t id) override;

  /// The job's result; nullptr unless the job is kDone.
  std::shared_ptr<const JobResult> result(std::uint64_t id) const override;

  /// Request cancellation. Queued jobs (including backoff waiters) cancel
  /// immediately; running jobs stop at their next tick. Returns false for
  /// unknown or already terminal jobs.
  bool cancel(std::uint64_t id) override;

  /// Block until the job reaches a terminal state or `timeout_s` elapses.
  /// Returns true when terminal.
  bool wait(std::uint64_t id, double timeout_s) override;

  ServiceStats stats() const override;

  /// A single pool is its own (only) shard.
  std::vector<ServiceStats> shard_stats() const override { return {stats()}; }

  const ScenarioRegistry& registry() const override { return registry_; }
  const ServiceConfig& config() const { return config_; }

 private:
  /// Concurrency contract, field by field:
  ///  * `id`, `resolved`, `key`, `canonical`, `deadline` are written once
  ///    during admission (under mutex_) and immutable afterwards — the
  ///    executing worker reads them without the lock;
  ///  * `stop` is the lock-free cancellation token (atomic);
  ///  * everything else (state, error*, result, attempts, from_cache,
  ///    stale) is mutated only under SimService::mutex_. Clang's analysis
  ///    cannot express "guarded by the owning service's mutex" without a
  ///    back pointer, so this half of the contract stays prose — but every
  ///    mutation site lives in a REQUIRES(mutex_) helper or under a
  ///    MutexLock, and tools/lockcheck checks the lock discipline of those
  ///    helpers.
  struct Job {
    std::uint64_t id = 0;
    SimRequest resolved;
    /// Set for compare jobs (resolved spec; `resolved` is then unused).
    /// Written once during admission, immutable afterwards, like the
    /// fields below.
    std::shared_ptr<const CompareRequest> compare;
    std::uint64_t key = 0;
    std::string canonical;
    JobState state = JobState::kQueued;
    bool from_cache = false;
    bool stale = false;
    int attempts = 0;
    std::string error;
    std::string error_code;
    std::string fault_site;
    std::shared_ptr<const JobResult> result;
    std::atomic<bool> stop{false};
    /// Wall-clock deadline; nullopt = none.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  /// One queue slot: a single job (scalar path) or a lockstep group of
  /// lanes from one submit_many() call (wide path).
  struct Work {
    std::vector<std::shared_ptr<Job>> lanes;
  };

  /// What one execution attempt produced for one job, settled under the
  /// mutex by settle_locked() (shared by the scalar and wide paths so
  /// retry / stale-fallback / failure semantics are identical).
  struct ExecOutcome {
    std::shared_ptr<JobResult> result;
    bool cancelled = false;
    bool expired = false;
    std::string error;
    std::string error_code;
    std::string fault_site;
    bool retryable = false;
  };

  void worker_loop();
  void execute(const std::shared_ptr<Job>& job, int attempt);

  /// Run one resolved request as deadline/stop-cooperative slices on the
  /// calling worker (the shared core of execute() and compare lanes).
  /// Returns the finished result (not yet cached), or nullptr with
  /// out.cancelled/out.expired set; throws on faults and engine errors.
  /// `fault_key` seeds the per-slice fault sites — the job's canonical
  /// hash for scalar jobs, the lane's own canonical hash for compare
  /// lanes, so injected schedules stay pure in (request, attempt, slice).
  std::shared_ptr<JobResult> run_resolved_sliced(const SimRequest& resolved,
                                                 std::uint64_t fault_key,
                                                 int attempt, const Job& job,
                                                 ExecOutcome& out);

  /// Run a compare job: rounds of per-(arm, seed) lanes — cache-served or
  /// freshly sliced — feeding per-arm Welford accumulators, with the pure
  /// best-arm decision after every round. The verdict payload is cached
  /// under the job's compare key.
  void execute_compare(const std::shared_ptr<Job>& job, int attempt);

  /// Run a lockstep group (>= 2 lanes, engines per lane, fused physics).
  /// A lane that faults, trips a guard, cancels or expires retires alone;
  /// survivors keep stepping. `attempts[k]` is lane k's attempt number.
  void execute_wide(const std::vector<std::shared_ptr<Job>>& lanes,
                    const std::vector<int>& attempts);

  /// Map the in-flight exception to an ExecOutcome (call inside catch).
  static void classify_current_exception(ExecOutcome& out);

  /// Shared admission core of submit_prepared() and
  /// submit_compare_prepared(): cache lookup, shutdown/backpressure
  /// handling, job creation and queueing for one (key, canonical) unit of
  /// work. `compare` non-null admits a compare job (`resolved` unused).
  SubmitOutcome admit_unit(std::uint64_t key, std::string canonical,
                           SimRequest resolved,
                           std::shared_ptr<const CompareRequest> compare,
                           double deadline_s);

  /// Apply one attempt's outcome to the job: success / cancel / expiry
  /// finish it; a retryable failure re-queues it (as a scalar retry) with
  /// backoff; otherwise stale-fallback or kFailed.
  void settle_locked(const std::shared_ptr<Job>& job, int attempt,
                     ExecOutcome& out) REQUIRES(mutex_);

  unsigned resolved_batch_width() const;

  /// Backoff before the attempt after `attempt` failed (exponential in
  /// the attempt number, deterministically jittered per job).
  double retry_backoff_s(int attempt, std::uint64_t key) const;

  /// Moves a queued job past its deadline to kExpired (the worker skips
  /// non-queued jobs on pop); returns true if it expired.
  bool expire_if_overdue_locked(const std::shared_ptr<Job>& job)
      REQUIRES(mutex_);

  /// Terminal-state bookkeeping + waiter wakeup.
  void finish_locked(const std::shared_ptr<Job>& job, JobState state,
                     const std::string& error) REQUIRES(mutex_);

  ScenarioRegistry registry_;
  ServiceConfig config_;
  ResultCache cache_;

  /// Lock order: mutex_ may be held while acquiring ResultCache::mutex_
  /// (settle_locked's stale lookup), never the reverse — the cache takes
  /// no locks of its own while called. Checked by tools/lockcheck;
  /// documented in DESIGN.md section 15.
  mutable util::Mutex mutex_;
  util::CondVar work_cv_;  // workers: queue / retries / shutdown
  util::CondVar done_cv_;  // waiters: job completion
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_ GUARDED_BY(mutex_);
  std::deque<Work> queue_ GUARDED_BY(mutex_);
  /// Jobs waiting out a retry backoff, keyed by their due time.
  std::multimap<std::chrono::steady_clock::time_point,
                std::shared_ptr<Job>>
      retries_ GUARDED_BY(mutex_);
  std::uint64_t next_id_ GUARDED_BY(mutex_) = 1;
  bool shutting_down_ GUARDED_BY(mutex_) = false;

  // Counters guarded by mutex_.
  std::size_t submitted_ GUARDED_BY(mutex_) = 0;
  std::size_t rejected_ GUARDED_BY(mutex_) = 0;
  std::size_t completed_ GUARDED_BY(mutex_) = 0;
  std::size_t failed_ GUARDED_BY(mutex_) = 0;
  std::size_t cancelled_ GUARDED_BY(mutex_) = 0;
  std::size_t expired_ GUARDED_BY(mutex_) = 0;
  std::size_t retry_count_ GUARDED_BY(mutex_) = 0;
  std::size_t stale_served_ GUARDED_BY(mutex_) = 0;
  std::size_t running_ GUARDED_BY(mutex_) = 0;
  std::size_t wide_jobs_ GUARDED_BY(mutex_) = 0;
  std::size_t lockstep_lanes_ GUARDED_BY(mutex_) = 0;
  std::size_t compares_ GUARDED_BY(mutex_) = 0;
  std::size_t compare_rounds_ GUARDED_BY(mutex_) = 0;
  std::size_t compare_lane_runs_ GUARDED_BY(mutex_) = 0;
  std::size_t compare_lane_hits_ GUARDED_BY(mutex_) = 0;
  std::size_t compare_early_stops_ GUARDED_BY(mutex_) = 0;

  /// Started in the constructor, joined in the destructor; the vector
  /// itself is touched by no other thread.
  std::vector<std::thread> workers_;
};

}  // namespace mobitherm::service
