#include "governors/hotplug.h"

#include <algorithm>

#include "util/error.h"

namespace mobitherm::governors {

HotplugGovernor::HotplugGovernor(const platform::SocSpec& spec,
                                 Config config)
    : config_(config) {
  if (config_.cluster >= spec.clusters.size()) {
    throw util::ConfigError("HotplugGovernor: cluster index out of range");
  }
  max_cores_ = spec.clusters[config_.cluster].num_cores;
  if (config_.min_cores < 0 || config_.min_cores > max_cores_) {
    throw util::ConfigError("HotplugGovernor: min_cores out of range");
  }
  if (config_.polling_period_s <= util::seconds(0.0)) {
    throw util::ConfigError("HotplugGovernor: period must be positive");
  }
  target_ = max_cores_;
}

int HotplugGovernor::update(util::Kelvin control_temp) {
  if (control_temp > config_.trip_k && target_ > config_.min_cores) {
    --target_;
    ++offline_events_;
  } else if (control_temp < config_.trip_k - config_.hysteresis_k &&
             target_ < max_cores_) {
    ++target_;
  }
  return target_;
}

}  // namespace mobitherm::governors
