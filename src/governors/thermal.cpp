#include "governors/thermal.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mobitherm::governors {

using util::ConfigError;

std::vector<std::size_t> ThermalGovernor::caps(
    std::size_t num_clusters) const {
  std::vector<std::size_t> out;
  caps_into(num_clusters, out);
  return out;
}

void ThermalGovernor::caps_into(std::size_t num_clusters,
                                std::vector<std::size_t>& out) const {
  out.resize(num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    out[c] = cap_index(c);
  }
}

StepWiseGovernor::Config StepWiseGovernor::uniform(
    const platform::SocSpec& spec, util::Kelvin trip_k,
    util::Kelvin hysteresis_k, util::Seconds polling_period_s) {
  Config cfg;
  cfg.polling_period_s = polling_period_s;
  for (std::size_t c = 0; c < spec.clusters.size(); ++c) {
    if (spec.clusters[c].kind == platform::ResourceKind::kMemory) {
      continue;
    }
    Zone zone;
    zone.cluster = c;
    zone.sensor_node = spec.clusters[c].thermal_node;
    zone.trip_k = trip_k;
    zone.hysteresis_k = hysteresis_k;
    cfg.zones.push_back(zone);
  }
  return cfg;
}

StepWiseGovernor::StepWiseGovernor(const platform::SocSpec& spec,
                                   Config config)
    : config_(std::move(config)) {
  const std::size_t n = spec.clusters.size();
  if (config_.zones.empty()) {
    throw ConfigError("StepWiseGovernor: no zones configured");
  }
  for (const Zone& z : config_.zones) {
    if (z.cluster >= n) {
      throw ConfigError("StepWiseGovernor: zone cluster out of range");
    }
    if (z.steps_per_state == 0) {
      throw ConfigError("StepWiseGovernor: steps_per_state must be > 0");
    }
  }
  max_index_.reserve(n);
  for (const platform::ClusterSpec& c : spec.clusters) {
    max_index_.push_back(c.opps.max_index());
  }
  state_.assign(config_.zones.size(), 0);
}

void StepWiseGovernor::update(const ThermalContext& ctx) {
  for (std::size_t z = 0; z < config_.zones.size(); ++z) {
    const Zone& zone = config_.zones[z];
    util::Kelvin temp = ctx.control_temp_k;
    if (ctx.node_temp_k != nullptr &&
        zone.sensor_node < ctx.node_temp_k->size()) {
      temp = util::kelvin((*ctx.node_temp_k)[zone.sensor_node]);
    }
    if (temp > zone.trip_k) {
      state_[z] = std::min(state_[z] + 1, zone.max_states);
    } else if (temp < zone.trip_k - zone.hysteresis_k && state_[z] > 0) {
      --state_[z];
    }
  }
}

std::size_t StepWiseGovernor::cap_index(std::size_t cluster) const {
  if (cluster >= max_index_.size()) {
    throw ConfigError("StepWiseGovernor: cluster index out of range");
  }
  std::size_t cap = max_index_[cluster];
  for (std::size_t z = 0; z < config_.zones.size(); ++z) {
    const Zone& zone = config_.zones[z];
    if (zone.cluster != cluster) {
      continue;
    }
    const std::size_t drop = state_[z] * zone.steps_per_state;
    const std::size_t top = max_index_[cluster];
    const std::size_t floor_idx = std::min(zone.floor_index, top);
    const std::size_t zone_cap =
        drop >= top - floor_idx ? floor_idx : top - drop;
    cap = std::min(cap, zone_cap);
  }
  return cap;
}

std::size_t StepWiseGovernor::zone_state(std::size_t z) const {
  if (z >= state_.size()) {
    throw ConfigError("StepWiseGovernor: zone index out of range");
  }
  return state_[z];
}

BangBangGovernor::BangBangGovernor(const platform::SocSpec& spec,
                                   Config config)
    : config_(std::move(config)) {
  const std::size_t n = spec.clusters.size();
  is_actor_.assign(n, false);
  if (config_.actors.empty()) {
    for (std::size_t c = 0; c < n; ++c) {
      is_actor_[c] =
          spec.clusters[c].kind != platform::ResourceKind::kMemory;
    }
  } else {
    for (std::size_t a : config_.actors) {
      if (a >= n) {
        throw ConfigError("BangBangGovernor: actor index out of range");
      }
      is_actor_[a] = true;
    }
  }
  max_index_.reserve(n);
  for (const platform::ClusterSpec& c : spec.clusters) {
    max_index_.push_back(c.opps.max_index());
  }
}

void BangBangGovernor::update(const ThermalContext& ctx) {
  if (ctx.control_temp_k > config_.trip_k) {
    tripped_ = true;
  } else if (ctx.control_temp_k < config_.trip_k - config_.hysteresis_k) {
    tripped_ = false;
  }
}

std::size_t BangBangGovernor::cap_index(std::size_t cluster) const {
  if (cluster >= max_index_.size()) {
    throw ConfigError("BangBangGovernor: cluster index out of range");
  }
  if (!tripped_ || !is_actor_[cluster]) {
    return max_index_[cluster];
  }
  return std::min(config_.floor_index, max_index_[cluster]);
}

FairShareGovernor::FairShareGovernor(const platform::SocSpec& spec,
                                     Config config)
    : config_(std::move(config)) {
  const std::size_t n = spec.clusters.size();
  if (config_.max_temp_k <= config_.trip_k) {
    throw ConfigError("FairShareGovernor: max_temp must exceed trip");
  }
  if (config_.weights.empty()) {
    config_.weights.assign(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
      if (spec.clusters[c].kind != platform::ResourceKind::kMemory) {
        config_.weights[c] = 1.0;
      }
    }
  }
  if (config_.weights.size() != n) {
    throw ConfigError("FairShareGovernor: weights size mismatch");
  }
  max_index_.reserve(n);
  for (const platform::ClusterSpec& c : spec.clusters) {
    max_index_.push_back(c.opps.max_index());
    cap_.push_back(c.opps.max_index());
  }
}

void FairShareGovernor::update(const ThermalContext& ctx) {
  // Depth into the [trip, max_temp] band, in [0, 1].
  const double depth =
      std::clamp((ctx.control_temp_k - config_.trip_k) /
                     (config_.max_temp_k - config_.trip_k),
                 0.0, 1.0);
  for (std::size_t c = 0; c < max_index_.size(); ++c) {
    if (config_.weights[c] <= 0.0) {
      cap_[c] = max_index_[c];
      continue;
    }
    const double scaled_depth = std::min(1.0, depth * config_.weights[c]);
    cap_[c] = static_cast<std::size_t>(
        std::lround((1.0 - scaled_depth) * max_index_[c]));
  }
}

std::size_t FairShareGovernor::cap_index(std::size_t cluster) const {
  if (cluster >= cap_.size()) {
    throw ConfigError("FairShareGovernor: cluster index out of range");
  }
  return cap_[cluster];
}

IpaGovernor::IpaGovernor(const platform::SocSpec& spec, Config config)
    : config_(std::move(config)) {
  const std::size_t n = spec.clusters.size();
  if (config_.actors.empty()) {
    for (std::size_t c = 0; c < n; ++c) {
      config_.actors.push_back(c);
    }
  }
  for (std::size_t a : config_.actors) {
    if (a >= n) {
      throw ConfigError("IpaGovernor: actor index out of range");
    }
  }
  max_index_.reserve(n);
  cap_.reserve(n);
  for (const platform::ClusterSpec& c : spec.clusters) {
    max_index_.push_back(c.opps.max_index());
    cap_.push_back(c.opps.max_index());
  }
}

void IpaGovernor::update(const ThermalContext& ctx) {
  if (ctx.soc == nullptr || ctx.power == nullptr ||
      ctx.busy_cores == nullptr || ctx.requested_index == nullptr) {
    throw ConfigError("IpaGovernor: context must carry soc/power/activity");
  }
  const util::Kelvin err = config_.control_temp_k - ctx.control_temp_k;

  // PID power budget (proportional gains asymmetric as in the kernel).
  const util::WattPerKelvin k_p =
      err < util::kelvin(0.0) ? config_.k_po : config_.k_pu;
  integral_ += config_.k_i * err * ctx.dt;
  integral_ = std::clamp(integral_, -config_.integral_cap_w,
                         config_.integral_cap_w);
  util::Watt budget =
      config_.sustainable_power_w + k_p * err + integral_;
  budget = std::max(budget, util::watts(0.0));
  last_budget_w_ = budget;

  // Each actor requests the power it would draw at its cpufreq-requested
  // OPP with its current activity.
  std::vector<util::Watt> request(max_index_.size());
  util::Watt total_request{};
  for (std::size_t a : config_.actors) {
    const double busy = (*ctx.busy_cores)[a];
    const std::size_t want = std::min((*ctx.requested_index)[a],
                                      max_index_[a]);
    request[a] = busy * ctx.power->dynamic_per_core_at(a, want) +
                 ctx.soc->cluster(a).idle_power_w;
    total_request += request[a];
  }

  // Grant power proportional to requests; translate each grant into the
  // highest OPP whose dynamic power at the current activity fits.
  for (std::size_t c = 0; c < max_index_.size(); ++c) {
    cap_[c] = max_index_[c];
  }
  if (total_request <= util::watts(0.0)) {
    return;
  }
  for (std::size_t a : config_.actors) {
    const util::Watt grant = budget * request[a] / total_request;
    const double busy = std::max((*ctx.busy_cores)[a], 1e-3);
    const util::Watt idle = ctx.soc->cluster(a).idle_power_w;
    std::size_t cap = 0;
    for (std::size_t i = 0; i <= max_index_[a]; ++i) {
      const util::Watt p =
          busy * ctx.power->dynamic_per_core_at(a, i) + idle;
      if (p <= grant) {
        cap = i;
      }
    }
    cap_[a] = cap;
  }
}

std::size_t IpaGovernor::cap_index(std::size_t cluster) const {
  if (cluster >= cap_.size()) {
    throw ConfigError("IpaGovernor: cluster index out of range");
  }
  return cap_[cluster];
}

}  // namespace mobitherm::governors
