// DVFS (cpufreq/devfreq-style) governors.
//
// A governor is sampled at its own period with the cluster's utilization at
// the *current* frequency and returns the OPP index it requests. The engine
// applies min(request, thermal cap), mirroring how the kernel's cpufreq
// policy is clamped by the thermal framework — the "contradicting
// governors" interaction the paper discusses in Sec. I.
//
// Implemented policies: performance, powersave, userspace, ondemand,
// conservative, interactive (the Android default the paper names), and
// schedutil.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "platform/opp.h"
#include "util/units.h"

namespace mobitherm::governors {

/// Inputs for one governor decision.
struct CpufreqInputs {
  /// Cluster utilization in [0, 1] at the current OPP, averaged over the
  /// governor's sampling period.
  double utilization = 0.0;
  std::size_t current_index = 0;
};

class CpufreqGovernor {
 public:
  virtual ~CpufreqGovernor() = default;

  virtual const char* name() const = 0;

  /// Time between decisions.
  virtual util::Seconds sampling_period_s() const {
    return util::seconds(0.02);
  }

  /// Requested OPP index for the next interval.
  virtual std::size_t decide(const CpufreqInputs& in,
                             const platform::OppTable& table) = 0;

  /// User-input notification (touch/key): governors may boost. Default is
  /// to ignore it; the interactive governor jumps to hispeed_freq — the
  /// "highest value whenever it detects user interactions" behaviour the
  /// paper describes.
  virtual void notify_input() {}
};

/// Always the highest OPP.
class Performance final : public CpufreqGovernor {
 public:
  const char* name() const override { return "performance"; }
  std::size_t decide(const CpufreqInputs&,
                     const platform::OppTable& table) override {
    return table.max_index();
  }
};

/// Always the lowest OPP.
class Powersave final : public CpufreqGovernor {
 public:
  const char* name() const override { return "powersave"; }
  std::size_t decide(const CpufreqInputs&,
                     const platform::OppTable&) override {
    return 0;
  }
};

/// Pinned to a caller-chosen OPP.
class Userspace final : public CpufreqGovernor {
 public:
  explicit Userspace(std::size_t index) : index_(index) {}
  const char* name() const override { return "userspace"; }
  void set_index(std::size_t index) { index_ = index; }
  std::size_t decide(const CpufreqInputs&,
                     const platform::OppTable& table) override {
    return std::min(index_, table.max_index());
  }

 private:
  std::size_t index_;
};

/// Classic ondemand: jump to max above the up-threshold, otherwise pick the
/// lowest frequency that keeps utilization at ~up_threshold.
class Ondemand final : public CpufreqGovernor {
 public:
  struct Config {
    double up_threshold = 0.80;
    util::Seconds sampling_period_s{0.05};
    /// Kernel sampling_down_factor: after jumping to max, hold it for this
    /// many sampling periods before allowing a drop (avoids thrashing on
    /// bursty loads).
    int sampling_down_factor = 1;
  };
  Ondemand();
  explicit Ondemand(Config config) : config_(config) {}
  const char* name() const override { return "ondemand"; }
  util::Seconds sampling_period_s() const override {
    return config_.sampling_period_s;
  }
  std::size_t decide(const CpufreqInputs& in,
                     const platform::OppTable& table) override;

 private:
  Config config_;
  int hold_remaining_ = 0;
};

/// Conservative: single-step moves against up/down thresholds.
class Conservative final : public CpufreqGovernor {
 public:
  struct Config {
    double up_threshold = 0.80;
    double down_threshold = 0.35;
    util::Seconds sampling_period_s{0.05};
  };
  Conservative();
  explicit Conservative(Config config) : config_(config) {}
  const char* name() const override { return "conservative"; }
  util::Seconds sampling_period_s() const override {
    return config_.sampling_period_s;
  }
  std::size_t decide(const CpufreqInputs& in,
                     const platform::OppTable& table) override;

 private:
  Config config_;
};

/// Android interactive: jump to hispeed_freq on high load, raise further
/// only after above_hispeed_delay, and hold speed for min_sample_time
/// before dropping. This is the governor whose "highest value on user
/// interaction" behaviour the paper calls out.
class Interactive final : public CpufreqGovernor {
 public:
  struct Config {
    double go_hispeed_load = 0.85;
    /// Fraction of f_max used as hispeed_freq.
    double hispeed_fraction = 0.80;
    double target_load = 0.90;
    util::Seconds above_hispeed_delay_s{0.02};
    util::Seconds min_sample_time_s{0.08};
    util::Seconds sampling_period_s{0.02};
    /// How long an input event holds the frequency at/above hispeed.
    util::Seconds input_boost_duration_s{0.5};
  };
  Interactive();
  explicit Interactive(Config config) : config_(config) {}
  const char* name() const override { return "interactive"; }
  util::Seconds sampling_period_s() const override {
    return config_.sampling_period_s;
  }
  std::size_t decide(const CpufreqInputs& in,
                     const platform::OppTable& table) override;
  void notify_input() override {
    boost_remaining_s_ = config_.input_boost_duration_s;
  }

  bool boosted() const { return boost_remaining_s_ > util::seconds(0.0); }

 private:
  Config config_;
  util::Seconds time_above_hispeed_{};
  util::Seconds time_since_raise_{};
  util::Seconds boost_remaining_s_{};
};

/// schedutil: f_next = headroom * f_cur * util, snapped up.
class Schedutil final : public CpufreqGovernor {
 public:
  struct Config {
    double headroom = 1.25;
    util::Seconds sampling_period_s{0.01};
  };
  Schedutil();
  explicit Schedutil(Config config) : config_(config) {}
  const char* name() const override { return "schedutil"; }
  util::Seconds sampling_period_s() const override {
    return config_.sampling_period_s;
  }
  std::size_t decide(const CpufreqInputs& in,
                     const platform::OppTable& table) override;

 private:
  Config config_;
};

/// Factory by kernel-style name; throws ConfigError for unknown names.
std::unique_ptr<CpufreqGovernor> make_cpufreq_governor(
    const std::string& name);

}  // namespace mobitherm::governors
