#include "governors/cpufreq.h"

#include <algorithm>

#include "util/error.h"

namespace mobitherm::governors {

// Out-of-line default constructors: nested Config default member
// initializers are not usable as in-class default arguments (CWG 1397).
Ondemand::Ondemand() : config_(Config{}) {}
Conservative::Conservative() : config_(Config{}) {}
Interactive::Interactive() : config_(Config{}) {}
Schedutil::Schedutil() : config_(Config{}) {}


std::size_t Ondemand::decide(const CpufreqInputs& in,
                             const platform::OppTable& table) {
  if (in.utilization >= config_.up_threshold) {
    hold_remaining_ = config_.sampling_down_factor;
    return table.max_index();
  }
  // sampling_down_factor: hold max for a few periods after a burst.
  if (hold_remaining_ > 0 && in.current_index == table.max_index()) {
    --hold_remaining_;
    if (hold_remaining_ > 0) {
      return table.max_index();
    }
  }
  // Lowest frequency that would bring utilization to the up-threshold.
  const util::Hertz cur_freq = table.at(in.current_index).freq_hz;
  const util::Hertz wanted =
      cur_freq * in.utilization / config_.up_threshold;
  return table.ceil_index(wanted);
}

std::size_t Conservative::decide(const CpufreqInputs& in,
                                 const platform::OppTable& table) {
  if (in.utilization >= config_.up_threshold) {
    return std::min(in.current_index + 1, table.max_index());
  }
  if (in.utilization <= config_.down_threshold && in.current_index > 0) {
    return in.current_index - 1;
  }
  return in.current_index;
}

std::size_t Interactive::decide(const CpufreqInputs& in,
                                const platform::OppTable& table) {
  const util::Seconds dt = config_.sampling_period_s;
  if (boost_remaining_s_ > util::seconds(0.0)) {
    boost_remaining_s_ -= dt;
  }
  const util::Hertz f_cur = table.at(in.current_index).freq_hz;
  const util::Hertz f_max = table.highest().freq_hz;
  const std::size_t hispeed_index =
      table.ceil_index(config_.hispeed_fraction * f_max);

  // Lowest OPP whose expected utilization stays at/below the target load.
  const util::Hertz wanted = f_cur * in.utilization / config_.target_load;
  std::size_t target_index = table.ceil_index(wanted);

  std::size_t next = in.current_index;
  if (in.utilization >= config_.go_hispeed_load) {
    if (in.current_index < hispeed_index) {
      // Burst straight to hispeed_freq.
      next = hispeed_index;
      time_above_hispeed_ = util::seconds(0.0);
    } else {
      // Already at/above hispeed: raise further only after the delay.
      time_above_hispeed_ += dt;
      next = (time_above_hispeed_ >= config_.above_hispeed_delay_s)
                 ? std::max(target_index, in.current_index)
                 : in.current_index;
    }
  } else {
    time_above_hispeed_ = util::seconds(0.0);
    next = target_index;
  }

  if (boost_remaining_s_ > util::seconds(0.0)) {
    // Touch boost: never fall below hispeed while the boost holds.
    next = std::max(next, hispeed_index);
  }

  if (next > in.current_index) {
    time_since_raise_ = util::seconds(0.0);
  } else if (next < in.current_index) {
    // Hold the current speed for min_sample_time before dropping.
    time_since_raise_ += dt;
    if (time_since_raise_ < config_.min_sample_time_s) {
      next = in.current_index;
    } else {
      time_since_raise_ = util::seconds(0.0);
    }
  }
  return std::min(next, table.max_index());
}

std::size_t Schedutil::decide(const CpufreqInputs& in,
                              const platform::OppTable& table) {
  const util::Hertz f_cur = table.at(in.current_index).freq_hz;
  const util::Hertz wanted = config_.headroom * f_cur * in.utilization;
  return table.ceil_index(wanted);
}

std::unique_ptr<CpufreqGovernor> make_cpufreq_governor(
    const std::string& name) {
  if (name == "performance") {
    return std::make_unique<Performance>();
  }
  if (name == "powersave") {
    return std::make_unique<Powersave>();
  }
  if (name == "userspace") {
    return std::make_unique<Userspace>(0);
  }
  if (name == "ondemand") {
    return std::make_unique<Ondemand>();
  }
  if (name == "conservative") {
    return std::make_unique<Conservative>();
  }
  if (name == "interactive") {
    return std::make_unique<Interactive>();
  }
  if (name == "schedutil") {
    return std::make_unique<Schedutil>();
  }
  throw util::ConfigError("unknown cpufreq governor: " + name);
}

}  // namespace mobitherm::governors
