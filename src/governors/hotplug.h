// Emergency core hotplug.
//
// "In extreme cases, the governors resort to powering the cores off to
// reduce the temperature of the device" (paper Sec. I). This policy
// offlines big cores one per poll above an emergency trip and brings them
// back one per poll once the temperature falls below trip - hysteresis.
#pragma once

#include <cstddef>

#include "platform/soc.h"
#include "util/units.h"

namespace mobitherm::governors {

class HotplugGovernor {
 public:
  struct Config {
    /// Cluster whose cores are offlined (typically the big cluster).
    std::size_t cluster = 1;
    util::Kelvin trip_k{368.15};  // 95 degC: a last-resort action
    util::Kelvin hysteresis_k{5.0};
    util::Seconds polling_period_s{1.0};
    /// Never offline below this many cores.
    int min_cores = 1;
  };

  HotplugGovernor(const platform::SocSpec& spec, Config config);

  const char* name() const { return "hotplug_emergency"; }
  const Config& config() const { return config_; }
  util::Seconds polling_period_s() const {
    return config_.polling_period_s;
  }

  /// One poll with the control temperature; returns the new core target.
  int update(util::Kelvin control_temp);

  /// Cores this policy currently allows online.
  int target_cores() const { return target_; }

  /// Times a core was taken offline (for traces/tests).
  std::size_t offline_events() const { return offline_events_; }

 private:
  Config config_;
  int max_cores_;
  int target_;
  std::size_t offline_events_ = 0;
};

}  // namespace mobitherm::governors
