// Thermal governors: the system-wide throttling baselines of the paper.
//
// A thermal governor polls the control temperature and produces a per-
// cluster OPP *cap*; the engine applies min(cpufreq request, cap). Two
// kernel policies are modelled:
//  * StepWiseGovernor — the step_wise policy (trip points + hysteresis,
//    one throttle step per poll while hot),
//  * IpaGovernor — ARM Intelligent Power Allocation: a PID power budget
//    split across actors proportional to their requested power, translated
//    into frequency caps through the power model (ref. [31] of the paper;
//    the default Odroid policy of Sec. IV-C).
// NoThrottle disables thermal management ("throttling disabled" runs).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "platform/soc.h"
#include "power/model.h"
#include "util/units.h"

namespace mobitherm::governors {

/// Context handed to a thermal governor at each poll.
struct ThermalContext {
  util::Seconds dt{0.1};
  /// Control temperature — the sensor the policy is bound to (chip
  /// package on the Nexus, max core/GPU sensor on the Odroid).
  util::Kelvin control_temp_k{298.15};
  /// Current platform state for budget computations.
  const platform::Soc* soc = nullptr;
  const power::PowerModel* power = nullptr;
  /// Fractional busy cores per cluster (for power requests).
  const std::vector<double>* busy_cores = nullptr;
  /// OPP indices the cpufreq governors are requesting per cluster.
  const std::vector<std::size_t>* requested_index = nullptr;
  /// Per-thermal-node sensor readings (K), for zone-based policies. Raw
  /// doubles: this aliases the engine's sensor-view scratch vector.
  /// MOBILINT: raw-units-ok
  const std::vector<double>* node_temp_k = nullptr;
};

class ThermalGovernor {
 public:
  virtual ~ThermalGovernor() = default;
  virtual const char* name() const = 0;
  virtual util::Seconds polling_period_s() const {
    return util::seconds(0.1);
  }
  virtual void update(const ThermalContext& ctx) = 0;
  /// Highest OPP index cluster `c` may use right now.
  virtual std::size_t cap_index(std::size_t cluster) const = 0;

  /// Snapshot of cap_index for clusters [0, num_clusters) — the payload of
  /// a GovernorDecisionEvent on the engine's observer bus.
  std::vector<std::size_t> caps(std::size_t num_clusters) const;

  /// Allocation-free caps(): writes into caller-owned `out` (resized on
  /// first use, then reused).
  void caps_into(std::size_t num_clusters,
                 std::vector<std::size_t>& out) const;
};

/// No thermal management.
class NoThrottle final : public ThermalGovernor {
 public:
  const char* name() const override { return "none"; }
  void update(const ThermalContext&) override {}
  std::size_t cap_index(std::size_t) const override {
    return std::numeric_limits<std::size_t>::max();
  }
};

/// Linux step_wise with per-sensor thermal zones (cpu0..3 / gpu / pop-mem
/// zones on the Snapdragon): while a zone's sensor exceeds its trip point,
/// deepen that zone's throttle state one step per poll; release one step
/// per poll once it falls below trip - hysteresis. Each state removes
/// `steps_per_state` OPP indices from the cap of the cluster the zone
/// actuates.
class StepWiseGovernor final : public ThermalGovernor {
 public:
  struct Zone {
    /// Cluster whose OPP cap this zone actuates.
    std::size_t cluster = 0;
    /// Thermal node whose sensor the zone is bound to. If
    /// ThermalContext::node_temp_k is absent, the zone falls back to the
    /// scalar control temperature.
    std::size_t sensor_node = 0;
    util::Kelvin trip_k{315.15};
    util::Kelvin hysteresis_k{2.0};
    std::size_t steps_per_state = 1;
    /// Cap never goes below this OPP index.
    std::size_t floor_index = 0;
    std::size_t max_states = 64;
  };

  struct Config {
    util::Seconds polling_period_s{1.0};
    std::vector<Zone> zones;
  };

  /// Convenience: one zone per non-memory cluster, all bound to the scalar
  /// control temperature at the same trip point.
  static Config uniform(const platform::SocSpec& spec, util::Kelvin trip_k,
                        util::Kelvin hysteresis_k = util::kelvin(2.0),
                        util::Seconds polling_period_s = util::seconds(1.0));

  StepWiseGovernor(const platform::SocSpec& spec, Config config);

  const char* name() const override { return "step_wise"; }
  util::Seconds polling_period_s() const override {
    return config_.polling_period_s;
  }
  void update(const ThermalContext& ctx) override;
  std::size_t cap_index(std::size_t cluster) const override;

  /// Throttle state of zone `z` (for tests/traces).
  std::size_t zone_state(std::size_t z) const;

 private:
  Config config_;
  std::vector<std::size_t> max_index_;
  std::vector<std::size_t> state_;  // per zone
};

/// Linux bang_bang: a two-position regulator. Above the trip the actuated
/// clusters are capped at their floor index; once the temperature falls
/// below trip - hysteresis the cap is fully released. Simple, but the
/// paper's Sec. III shows why it is harsh: everything slows at once.
class BangBangGovernor final : public ThermalGovernor {
 public:
  struct Config {
    util::Kelvin trip_k{315.15};
    util::Kelvin hysteresis_k{3.0};
    util::Seconds polling_period_s{1.0};
    /// Clusters capped when tripped; empty = all non-memory clusters.
    std::vector<std::size_t> actors;
    /// Cap applied while tripped.
    std::size_t floor_index = 0;
  };

  BangBangGovernor(const platform::SocSpec& spec, Config config);

  const char* name() const override { return "bang_bang"; }
  util::Seconds polling_period_s() const override {
    return config_.polling_period_s;
  }
  void update(const ThermalContext& ctx) override;
  std::size_t cap_index(std::size_t cluster) const override;

  bool tripped() const { return tripped_; }

 private:
  Config config_;
  std::vector<std::size_t> max_index_;
  std::vector<bool> is_actor_;
  bool tripped_ = false;
};

/// Linux fair_share: above the trip, each actor's cap is scaled down in
/// proportion to how far the temperature has climbed into the
/// [trip, max_temp] band, weighted per actor.
class FairShareGovernor final : public ThermalGovernor {
 public:
  struct Config {
    util::Kelvin trip_k{315.15};
    /// Temperature at which actors are pinned to their lowest OPP.
    util::Kelvin max_temp_k{335.15};
    util::Seconds polling_period_s{1.0};
    /// Per-cluster weights (0 = not actuated); empty = weight 1 for all
    /// non-memory clusters.
    std::vector<double> weights;
  };

  FairShareGovernor(const platform::SocSpec& spec, Config config);

  const char* name() const override { return "fair_share"; }
  util::Seconds polling_period_s() const override {
    return config_.polling_period_s;
  }
  void update(const ThermalContext& ctx) override;
  std::size_t cap_index(std::size_t cluster) const override;

 private:
  Config config_;
  std::vector<std::size_t> max_index_;
  std::vector<std::size_t> cap_;
};

/// ARM Intelligent Power Allocation.
class IpaGovernor final : public ThermalGovernor {
 public:
  struct Config {
    util::Kelvin control_temp_k{358.15};  // target (85 degC on the XU3)
    util::Watt sustainable_power_w{2.5};
    /// Proportional gains, asymmetric as in the kernel.
    util::WattPerKelvin k_po{0.6};   // when over target
    util::WattPerKelvin k_pu{0.25};  // when under target
    util::WattPerKelvinSecond k_i{0.01};  // integral gain
    util::Watt integral_cap_w{1.0};
    util::Seconds polling_period_s{0.1};
    /// Clusters IPA actuates (typically big CPU + GPU). Empty = all.
    std::vector<std::size_t> actors;
  };

  IpaGovernor(const platform::SocSpec& spec, Config config);

  const char* name() const override { return "ipa"; }
  util::Seconds polling_period_s() const override {
    return config_.polling_period_s;
  }
  void update(const ThermalContext& ctx) override;
  std::size_t cap_index(std::size_t cluster) const override;

  util::Watt last_budget_w() const { return last_budget_w_; }

 private:
  Config config_;
  std::vector<std::size_t> cap_;
  std::vector<std::size_t> max_index_;
  util::Watt integral_{};
  util::Watt last_budget_w_{};
};

}  // namespace mobitherm::governors
