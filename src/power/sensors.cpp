#include "power/sensors.h"

#include <cmath>

#include "util/error.h"

namespace mobitherm::power {

using util::ConfigError;

RailSensor::RailSensor(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.period_s <= util::seconds(0.0)) {
    throw ConfigError("RailSensor: period must be positive");
  }
}

void RailSensor::feed(double dt, double watts) {
  if (dt <= 0.0) {
    return;
  }
  const double period_s = config_.period_s.value();
  accum_time_ += dt;
  accum_energy_ += dt * watts;
  while (accum_time_ >= period_s) {
    // Latch the average true power over the elapsed period, plus noise.
    double sample = accum_energy_ / accum_time_;
    if (config_.noise_stddev_w > util::watts(0.0)) {
      sample += rng_.normal(0.0, config_.noise_stddev_w.value());
    }
    if (config_.lsb_w > util::watts(0.0)) {
      sample = std::round(sample / config_.lsb_w.value()) *
               config_.lsb_w.value();
    }
    sample = std::max(0.0, sample);
    last_sample_w_ = sample;
    has_sample_ = true;
    window_.push(period_s, sample);
    sampled_energy_j_ += sample * period_s;
    accum_time_ -= period_s;
    accum_energy_ = watts * accum_time_;
  }
}

DaqSimulator::DaqSimulator(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.sample_rate_hz <= util::hertz(0.0)) {
    throw ConfigError("DaqSimulator: sample rate must be positive");
  }
  if (config_.trace_decimation <= 0) {
    throw ConfigError("DaqSimulator: trace decimation must be positive");
  }
}

void DaqSimulator::feed(double dt, double watts) {
  if (dt <= 0.0) {
    return;
  }
  const double period = (1.0 / config_.sample_rate_hz).value();
  const double end = now_ + dt;
  while (next_sample_at_ <= end) {
    double sample = watts;
    if (config_.noise_stddev_w > util::watts(0.0)) {
      sample += rng_.normal(0.0, config_.noise_stddev_w.value());
    }
    sample = std::max(0.0, sample);
    last_sample_w_ = sample;
    sum_samples_ += sample;
    if (num_samples_ % static_cast<std::size_t>(config_.trace_decimation) ==
        0) {
      trace_.emplace_back(next_sample_at_, sample);
    }
    ++num_samples_;
    next_sample_at_ += period;
  }
  now_ = end;
}

double DaqSimulator::mean_power_w() const {
  return num_samples_ > 0 ? sum_samples_ / static_cast<double>(num_samples_)
                          : 0.0;
}

}  // namespace mobitherm::power
