#include "power/battery.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mobitherm::power {

using util::ConfigError;

Battery::Battery(BatteryParams params, double initial_soc)
    : params_(std::move(params)), soc_(initial_soc) {
  if (params_.capacity_mah <= 0.0 || params_.internal_r_ohm < 0.0) {
    throw ConfigError("Battery: invalid parameters");
  }
  if (initial_soc < 0.0 || initial_soc > 1.0) {
    throw ConfigError("Battery: initial SoC out of [0, 1]");
  }
  if (params_.ocv_curve.size() < 2) {
    throw ConfigError("Battery: OCV curve needs at least two points");
  }
  for (std::size_t i = 0; i < params_.ocv_curve.size(); ++i) {
    if (i > 0 && (params_.ocv_curve[i].first <=
                      params_.ocv_curve[i - 1].first ||
                  params_.ocv_curve[i].second <
                      params_.ocv_curve[i - 1].second)) {
      throw ConfigError("Battery: OCV curve must ascend in SoC and OCV");
    }
  }
  if (params_.ocv_curve.front().first != 0.0 ||
      params_.ocv_curve.back().first != 1.0) {
    throw ConfigError("Battery: OCV curve must span SoC 0..1");
  }
}

double Battery::ocv_v() const {
  const auto& curve = params_.ocv_curve;
  if (soc_ <= curve.front().first) {
    return curve.front().second;
  }
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (soc_ <= curve[i].first) {
      const double frac = (soc_ - curve[i - 1].first) /
                          (curve[i].first - curve[i - 1].first);
      return curve[i - 1].second +
             frac * (curve[i].second - curve[i - 1].second);
    }
  }
  return curve.back().second;
}

double Battery::terminal_v(double load_w) const {
  if (load_w < 0.0) {
    throw ConfigError("Battery: negative load");
  }
  const double ocv = ocv_v();
  if (ocv <= 0.0) {
    return 0.0;
  }
  // Solve V = OCV - (P/V) R  ->  V^2 - OCV V + P R = 0 (larger root).
  const double disc = ocv * ocv - 4.0 * load_w * params_.internal_r_ohm;
  if (disc <= 0.0) {
    return 0.5 * ocv;  // beyond the deliverable power: brown-out point
  }
  return 0.5 * (ocv + std::sqrt(disc));
}

void Battery::drain(double dt, double load_w) {
  if (dt <= 0.0 || load_w <= 0.0 || empty()) {
    return;
  }
  const double v = terminal_v(load_w);
  if (v <= 0.0) {
    soc_ = 0.0;
    return;
  }
  const double amps = load_w / v;
  const double capacity_as = params_.capacity_mah * 3.6;  // mAh -> A s
  soc_ = std::max(0.0, soc_ - amps * dt / capacity_as);
}

double Battery::energy_remaining_j() const {
  // Integrate OCV over the remaining charge (trapezoid on the curve).
  const double capacity_as = params_.capacity_mah * 3.6;
  double energy = 0.0;
  const auto& curve = params_.ocv_curve;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double lo = std::min(curve[i - 1].first, soc_);
    const double hi = std::min(curve[i].first, soc_);
    if (hi <= lo) {
      continue;
    }
    // OCV at the segment's clipped endpoints (linear in SoC).
    auto ocv_at = [&](double s) {
      const double frac = (s - curve[i - 1].first) /
                          (curve[i].first - curve[i - 1].first);
      return curve[i - 1].second +
             frac * (curve[i].second - curve[i - 1].second);
    };
    energy += 0.5 * (ocv_at(lo) + ocv_at(hi)) * (hi - lo) * capacity_as;
  }
  return energy;
}

double Battery::projected_runtime_s(double load_w) const {
  if (load_w <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return energy_remaining_j() / load_w;
}

}  // namespace mobitherm::power
