// Power instrumentation models.
//
// RailSensor mimics the INA231 current sensors on the Odroid-XU3 (per-rail,
// ~10 Hz refresh); DaqSimulator mimics the National Instruments DAQ setup
// the paper uses on the Nexus 6P (whole-device power at 1 kHz with
// measurement noise). Both see only the sampled values, like the real
// governors/analysis pipeline would. EnergyCounter integrates true power.
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"
#include "util/sliding_window.h"
#include "util/units.h"

namespace mobitherm::power {

/// Periodic sampling power sensor with Gaussian measurement noise and LSB
/// quantization. Feed the *true* power every simulation tick; the sensor
/// latches a new sample once per period.
class RailSensor {
 public:
  struct Config {
    std::string name = "rail";
    util::Seconds period_s{0.1};    // INA231 default refresh
    util::Watt noise_stddev_w{};    // Gaussian noise on each sample
    util::Watt lsb_w{};             // quantization step; 0 = none
    std::uint64_t seed = 1;
  };

  explicit RailSensor(Config config);

  /// Advance time by dt with true power `watts`; samples are latched on
  /// period boundaries. Raw doubles: sensor-sampling boundary fed from the
  /// per-tick power accounting. MOBILINT: raw-units-ok
  void feed(double dt, double watts);

  /// Most recent latched sample (0 until the first period elapses).
  double last_sample_w() const { return last_sample_w_; }

  /// Duration-weighted mean of latched samples over the trailing 1 s.
  double windowed_w() const { return window_.mean(last_sample_w_); }

  /// Energy integral of the *sampled* power (what a userspace daemon
  /// polling the sensor would compute).
  double sampled_energy_j() const { return sampled_energy_j_; }

  const std::string& name() const { return config_.name; }

 private:
  Config config_;
  util::Xorshift64Star rng_;
  util::SlidingWindow window_{1.0};
  double accum_time_ = 0.0;
  double accum_energy_ = 0.0;
  double last_sample_w_ = 0.0;
  double sampled_energy_j_ = 0.0;
  bool has_sample_ = false;
};

/// Whole-device power acquisition at a fixed sampling rate (default 1 kHz),
/// as with the NI PXIe-4081 setup in Sec. III-A. Stores a decimated trace
/// for offline analysis.
class DaqSimulator {
 public:
  struct Config {
    util::Hertz sample_rate_hz{1000.0};
    util::Watt noise_stddev_w{0.01};
    /// Keep every Nth sample in the stored trace (1 = keep all).
    int trace_decimation = 100;
    std::uint64_t seed = 2;
  };

  explicit DaqSimulator(Config config);

  void feed(double dt, double watts);

  double last_sample_w() const { return last_sample_w_; }
  double mean_power_w() const;
  std::size_t num_samples() const { return num_samples_; }

  /// Decimated (time, power) trace.
  const std::vector<std::pair<double, double>>& trace() const {
    return trace_;
  }

 private:
  Config config_;
  util::Xorshift64Star rng_;
  double now_ = 0.0;
  double next_sample_at_ = 0.0;
  double last_sample_w_ = 0.0;
  double sum_samples_ = 0.0;
  std::size_t num_samples_ = 0;
  std::vector<std::pair<double, double>> trace_;
};

/// Exact energy integration of true power (joules).
class EnergyCounter {
 public:
  void add(double dt, double watts) {
    energy_j_ += dt * watts;
    time_s_ += dt;
  }
  double energy_j() const { return energy_j_; }
  double mean_power_w() const {
    return time_s_ > 0.0 ? energy_j_ / time_s_ : 0.0;
  }
  double elapsed_s() const { return time_s_; }
  void reset() {
    energy_j_ = 0.0;
    time_s_ = 0.0;
  }

 private:
  double energy_j_ = 0.0;
  double time_s_ = 0.0;
};

}  // namespace mobitherm::power
