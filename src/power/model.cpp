#include "power/model.h"

#include <cmath>

#include "util/error.h"

namespace mobitherm::power {

using util::ConfigError;

const char* to_string(LeakageForm form) {
  switch (form) {
    case LeakageForm::kBsim:
      return "bsim";
    case LeakageForm::kExpTempBias:
      return "exp_temp_bias";
  }
  return "?";
}

PowerModel::PowerModel(const platform::SocSpec& spec, LeakageParams leakage,
                       util::Watt board_base_w)
    : spec_(spec), leakage_(leakage), board_base_w_(board_base_w) {
  if (leakage_.form == LeakageForm::kBsim) {
    if (leakage_.theta_k <= util::kelvin(0.0) ||
        leakage_.a_w_per_k2 < util::watts_per_kelvin2(0.0)) {
      throw ConfigError("PowerModel: invalid leakage parameters");
    }
  } else {
    if (leakage_.exp_a_w <= util::watts(0.0) || leakage_.exp_b_per_k <= 0.0) {
      throw ConfigError(
          "PowerModel: exponential leakage requires positive A_e and B");
    }
  }
  if (board_base_w_ < util::watts(0.0)) {
    throw ConfigError("PowerModel: negative board base power");
  }
}

ClusterPower PowerModel::cluster_power(const platform::Soc& soc,
                                       std::size_t c,
                                       const ClusterActivity& activity) const {
  const platform::ClusterSpec& cs = soc.cluster(c);
  const platform::ClusterState& st = soc.state(c);
  if (activity.busy_cores < -1e-9 ||
      activity.busy_cores > st.online_cores + 1e-9) {
    throw ConfigError("PowerModel: busy_cores out of [0, online] for " +
                      cs.name);
  }
  const util::Volt v = soc.voltage_v(c);
  const util::Hertz f = soc.frequency_hz(c);

  if (activity.idle_power_scale < 0.0 || activity.idle_power_scale > 1.0) {
    throw ConfigError("PowerModel: idle_power_scale out of [0, 1] for " +
                      cs.name);
  }
  ClusterPower p;
  p.dynamic_w = activity.busy_cores * cs.ceff_f * v * v * f;
  p.idle_w = st.online_cores > 0
                 ? cs.idle_power_w * activity.idle_power_scale
                 : util::watts(0.0);
  const util::Kelvin t = activity.temp_k;
  // The baseline branch keeps the original expression (and evaluation
  // order) exactly: regression traces pin the baseline model bitwise.
  if (leakage_.form == LeakageForm::kBsim) {
    p.leakage_w = cs.leakage_share * leakage_.a_w_per_k2 * t * t *
                  std::exp(-leakage_.theta_k / t) *
                  (v / cs.nominal_voltage_v);
  } else {
    p.leakage_w = cs.leakage_share * leakage_.exp_a_w *
                  std::exp(leakage_.exp_b_per_k * t.value()) *
                  (v / cs.nominal_voltage_v);
  }
  return p;
}

util::Watt PowerModel::dynamic_per_core_at(std::size_t c,
                                           std::size_t opp) const {
  if (c >= spec_.clusters.size()) {
    throw ConfigError("PowerModel: cluster index out of range");
  }
  const platform::ClusterSpec& cs = spec_.clusters[c];
  const platform::OperatingPoint& pt = cs.opps.at(opp);
  return cs.ceff_f * pt.voltage_v * pt.voltage_v * pt.freq_hz;
}

util::Watt PowerModel::leakage_at(std::size_t c, std::size_t opp,
                                  util::Kelvin temp) const {
  if (c >= spec_.clusters.size()) {
    throw ConfigError("PowerModel: cluster index out of range");
  }
  const platform::ClusterSpec& cs = spec_.clusters[c];
  const platform::OperatingPoint& pt = cs.opps.at(opp);
  if (leakage_.form == LeakageForm::kBsim) {
    return cs.leakage_share * leakage_.a_w_per_k2 * temp * temp *
           std::exp(-leakage_.theta_k / temp) *
           (pt.voltage_v / cs.nominal_voltage_v);
  }
  return cs.leakage_share * leakage_.exp_a_w *
         std::exp(leakage_.exp_b_per_k * temp.value()) *
         (pt.voltage_v / cs.nominal_voltage_v);
}

util::Watt PowerModel::soc_leakage_nominal(util::Kelvin temp) const {
  if (leakage_.form == LeakageForm::kBsim) {
    return leakage_.a_w_per_k2 * temp * temp *
           std::exp(-leakage_.theta_k / temp);
  }
  return leakage_.exp_a_w * std::exp(leakage_.exp_b_per_k * temp.value());
}

}  // namespace mobitherm::power
