// SoC power model: frequency/voltage-dependent dynamic power plus
// temperature-dependent leakage.
//
// Dynamic power of a cluster with fractional busy cores b at OPP (f, V):
//     P_dyn = idle + b * ceff * V^2 * f
// Leakage of a cluster at absolute temperature T and voltage V:
//     P_leak = share * A * T^2 * exp(-theta / T) * (V / V_nom)
// where theta = q*Vth/(eta*k) is the leakage temperature constant and A is
// the SoC-level leakage coefficient. This is the BSIM-style model the
// paper's stability analysis (ref. [2], Bhat et al. TECS'17) is built on;
// using the same form in the simulator and the analyzer keeps the
// fixed-point predictions consistent with the simulated physics.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/soc.h"
#include "util/units.h"

namespace mobitherm::power {

/// Leakage model strategy. The paper's analysis uses the BSIM quadratic
/// form; De Vogeleer et al. model leakage as a pure exponential in
/// temperature. power::ModelRegistry names the strategies and derives the
/// alternate parameterizations from a platform's baseline calibration.
enum class LeakageForm {
  /// P_leak = share * A * T^2 * exp(-theta/T) * (V/V_nom)  (paper baseline)
  kBsim,
  /// P_leak = share * A_e * exp(B * T) * (V/V_nom)  (De Vogeleer bias)
  kExpTempBias,
};

const char* to_string(LeakageForm form);

/// SoC-level leakage parameters (see file comment).
struct LeakageParams {
  /// Leakage temperature constant theta = q*Vth/(eta*k). (kBsim)
  util::Kelvin theta_k{1857.8};
  /// SoC leakage coefficient A at nominal voltage; distributed over
  /// clusters by ClusterSpec::leakage_share. (kBsim)
  util::WattPerKelvin2 a_w_per_k2{1.5736e-3};
  /// Which of the two functional forms above evaluates the leakage.
  LeakageForm form = LeakageForm::kBsim;
  /// Exponential prefactor A_e at nominal voltage. (kExpTempBias)
  util::Watt exp_a_w{0.0};
  /// Exponential temperature slope B in 1/K. (kExpTempBias)
  double exp_b_per_k = 0.0;
};

/// Per-cluster inputs for one power evaluation.
struct ClusterActivity {
  /// Busy cores, fractional, in [0, online_cores].
  double busy_cores = 0.0;
  /// Absolute temperature of the cluster's thermal node.
  util::Kelvin temp_k{300.0};
  /// Multiplier on the idle floor, from the cpuidle model (1 = no C-state
  /// savings).
  double idle_power_scale = 1.0;
};

/// Breakdown of one cluster's power.
struct ClusterPower {
  util::Watt dynamic_w{};
  util::Watt idle_w{};
  util::Watt leakage_w{};
  util::Watt total() const { return dynamic_w + idle_w + leakage_w; }
};

/// Evaluates the SoC power model against a platform::Soc's current DVFS
/// state. Stateless apart from the spec/parameters; all activity is passed
/// in, so the same model instance serves the simulator, the IPA governor's
/// budget-to-frequency inversion, and the benches.
class PowerModel {
 public:
  PowerModel(const platform::SocSpec& spec, LeakageParams leakage,
             util::Watt board_base_w = {});

  const LeakageParams& leakage_params() const { return leakage_; }

  /// Constant platform power (regulators, display path, ...) attributed to
  /// the board node; not part of any measured rail.
  util::Watt board_base_w() const { return board_base_w_; }

  /// Power of cluster `c` at the OPP/online state in `soc` under the given
  /// activity.
  ClusterPower cluster_power(const platform::Soc& soc, std::size_t c,
                             const ClusterActivity& activity) const;

  /// Dynamic power of a fully busy core of cluster `c` at OPP `opp`.
  /// Used by the IPA governor to translate power budgets into frequency
  /// caps.
  util::Watt dynamic_per_core_at(std::size_t c, std::size_t opp) const;

  /// Leakage power of cluster `c` at temperature `temp` and OPP `opp`.
  util::Watt leakage_at(std::size_t c, std::size_t opp,
                        util::Kelvin temp) const;

  /// SoC leakage at temperature `temp` with every cluster at nominal
  /// voltage (A * T^2 * exp(-theta/T) for the baseline form, A_e * exp(B*T)
  /// for the exponential form). This is the lumped form the stability
  /// analyzer uses.
  util::Watt soc_leakage_nominal(util::Kelvin temp) const;

  std::size_t num_clusters() const { return spec_.clusters.size(); }
  const platform::SocSpec& spec() const { return spec_; }

 private:
  platform::SocSpec spec_;
  LeakageParams leakage_;
  util::Watt board_base_w_;
};

}  // namespace mobitherm::power
