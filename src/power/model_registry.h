// Named leakage/power model strategies.
//
// The simulator's physics is parameterized by power::LeakageParams; the
// registry names the admissible parameterizations so a service request can
// select one by string ("baseline", "devogeleer") the same way it selects a
// scenario or policy. A model is expressed as a *transformation* of the
// platform's baseline (BSIM) calibration rather than a table of per-board
// constants: the scenario factory hands the board's calibrated baseline in,
// and the entry derives its own parameters from it. That keeps each board
// calibrated exactly once (stability/presets.cpp) no matter how many model
// strategies exist.
//
// The De Vogeleer temperature-bias model replaces the BSIM quadratic
// A T^2 e^{-theta/T} with a pure exponential A_e e^{B T} (De Vogeleer et
// al., "Modeling the temperature bias of power consumption for nanometer-
// scale CPUs"). The derivation matches the baseline's leakage *value and
// log-slope* at a reference temperature, so near typical operating
// temperatures the two models agree and they diverge exactly where the
// functional forms do — at the hot end that decides stability.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "power/model.h"

namespace mobitherm::power {

/// Canonical name of the paper-baseline model; requests that do not name a
/// model resolve to it.
inline constexpr const char* kBaselineModelName = "baseline";

/// Reference temperature (60 degC) where alternate models are matched to
/// the baseline calibration.
inline constexpr util::Kelvin kModelMatchTemp = util::kelvin(333.15);

/// Derive the De Vogeleer exponential parameterization from a baseline
/// BSIM calibration: value and d(ln P)/dT agree at `t_ref`.
LeakageParams devogeleer_from_baseline(
    const LeakageParams& baseline, util::Kelvin t_ref = kModelMatchTemp);

class ModelRegistry {
 public:
  struct Entry {
    std::string name;
    std::string description;
    /// Derive this model's LeakageParams from the platform's baseline
    /// calibration. Must be pure: the scenario canonical key only embeds
    /// the model *name*, so the derivation may not depend on anything but
    /// its argument.
    std::function<LeakageParams(const LeakageParams& baseline)> derive;
  };

  /// Register (or replace) a model. Throws on empty name or missing
  /// derivation.
  void add(Entry entry);

  bool has(const std::string& name) const;
  const Entry& at(const std::string& name) const;  // throws on unknown
  std::vector<std::string> names() const;          // sorted
  std::size_t size() const { return entries_.size(); }

  /// LeakageParams for model `name` on a platform whose baseline
  /// calibration is `baseline`. Throws util::ConfigError on unknown names.
  LeakageParams leakage_for(const std::string& name,
                            const LeakageParams& baseline) const;

  /// "baseline" (identity) and "devogeleer" (exponential temperature-bias).
  static ModelRegistry standard();

 private:
  std::map<std::string, Entry> entries_;
};

/// Shared immutable standard model registry (constructed on first use).
const ModelRegistry& standard_model_registry();

}  // namespace mobitherm::power
