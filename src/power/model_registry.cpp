#include "power/model_registry.h"

#include <cmath>

#include "util/error.h"

namespace mobitherm::power {

using util::ConfigError;

LeakageParams devogeleer_from_baseline(const LeakageParams& baseline,
                                       util::Kelvin t_ref) {
  const double t_ref_k = t_ref.value();
  if (t_ref_k <= 0.0) {
    throw ConfigError("devogeleer_from_baseline: t_ref must be positive");
  }
  if (baseline.form != LeakageForm::kBsim) {
    throw ConfigError(
        "devogeleer_from_baseline: baseline must use the BSIM form");
  }
  const double theta = baseline.theta_k.value();
  const double a = baseline.a_w_per_k2.value();
  // Baseline leakage and log-slope at the reference temperature:
  //   L(T)      = A T^2 e^{-theta/T}
  //   dlnL/dT   = 2/T + theta/T^2
  const double l_ref = a * t_ref_k * t_ref_k * std::exp(-theta / t_ref_k);
  const double b = 2.0 / t_ref_k + theta / (t_ref_k * t_ref_k);
  LeakageParams out = baseline;
  out.form = LeakageForm::kExpTempBias;
  out.exp_b_per_k = b;
  out.exp_a_w = util::watts(l_ref * std::exp(-b * t_ref_k));
  return out;
}

void ModelRegistry::add(Entry entry) {
  if (entry.name.empty()) {
    throw ConfigError("ModelRegistry: entry name must be non-empty");
  }
  if (!entry.derive) {
    throw ConfigError("ModelRegistry: entry '" + entry.name +
                      "' has no derivation");
  }
  entries_[entry.name] = std::move(entry);
}

bool ModelRegistry::has(const std::string& name) const {
  return entries_.count(name) != 0;
}

const ModelRegistry::Entry& ModelRegistry::at(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw ConfigError("ModelRegistry: unknown power model '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;  // std::map iterates sorted
}

LeakageParams ModelRegistry::leakage_for(const std::string& name,
                                         const LeakageParams& baseline) const {
  return at(name).derive(baseline);
}

ModelRegistry ModelRegistry::standard() {
  ModelRegistry registry;

  Entry baseline;
  baseline.name = kBaselineModelName;
  baseline.description =
      "BSIM quadratic leakage A T^2 e^{-theta/T} (paper Sec. IV-A, ref. "
      "[2])";
  baseline.derive = [](const LeakageParams& b) { return b; };
  registry.add(std::move(baseline));

  Entry devogeleer;
  devogeleer.name = "devogeleer";
  devogeleer.description =
      "De Vogeleer exponential temperature-bias leakage A_e e^{B T}, "
      "matched to the baseline calibration at 60 degC";
  devogeleer.derive = [](const LeakageParams& b) {
    return devogeleer_from_baseline(b);
  };
  registry.add(std::move(devogeleer));

  return registry;
}

const ModelRegistry& standard_model_registry() {
  static const ModelRegistry registry = ModelRegistry::standard();
  return registry;
}

}  // namespace mobitherm::power
