#include "power/idle.h"

#include <algorithm>

#include "util/error.h"

namespace mobitherm::power {

using util::ConfigError;

CpuIdleModel::CpuIdleModel(std::vector<IdleState> states)
    : states_(std::move(states)) {
  if (states_.empty()) {
    throw ConfigError("CpuIdleModel: at least one state required");
  }
  if (states_.front().target_residency_s != 0.0) {
    throw ConfigError(
        "CpuIdleModel: first state must always be available "
        "(target residency 0)");
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].power_fraction < 0.0 ||
        states_[i].power_fraction > 1.0) {
      throw ConfigError("CpuIdleModel: power fraction out of [0, 1]");
    }
    if (i > 0) {
      if (states_[i].power_fraction > states_[i - 1].power_fraction) {
        throw ConfigError(
            "CpuIdleModel: deeper states must burn less power");
      }
      if (states_[i].target_residency_s <=
          states_[i - 1].target_residency_s) {
        throw ConfigError(
            "CpuIdleModel: deeper states need longer residencies");
      }
    }
  }
}

const IdleState& CpuIdleModel::select(double expected_idle_s) const {
  const IdleState* best = &states_.front();
  for (const IdleState& s : states_) {
    if (s.target_residency_s <= expected_idle_s) {
      best = &s;
    }
  }
  return *best;
}

double CpuIdleModel::idle_power_fraction(double utilization,
                                         double period_s) const {
  const double util = std::clamp(utilization, 0.0, 1.0);
  const double idle_interval = (1.0 - util) * period_s;
  const IdleState& state = select(idle_interval);
  // Busy fraction keeps the full floor; idle fraction pays the state's.
  return util + (1.0 - util) * state.power_fraction;
}

CpuIdleModel CpuIdleModel::default_arm() {
  return CpuIdleModel({
      {"wfi", 0.60, 0.0},
      {"core-off", 0.25, 0.002},
      {"cluster-off", 0.05, 0.020},
  });
}

}  // namespace mobitherm::power
