// Battery model: coulomb counting over an OCV(SoC) curve with ohmic drop.
//
// The paper's motivation is user experience on battery-powered devices;
// this model turns the simulator's power draw into state-of-charge,
// terminal voltage and projected runtime — the numbers a device vendor
// trades against performance and temperature.
#pragma once

#include <utility>
#include <vector>

namespace mobitherm::power {

struct BatteryParams {
  /// Rated capacity (mAh); Nexus 6P ships 3450 mAh. Battery capacity is
  /// quoted in vendor units on every datasheet, so the model keeps them.
  /// MOBILINT: raw-units-ok
  double capacity_mah = 3450.0;
  /// Internal (ohmic) resistance.
  double internal_r_ohm = 0.12;
  /// Open-circuit voltage vs. state of charge, ascending in SoC.
  /// Defaults to a typical Li-ion curve.
  std::vector<std::pair<double, double>> ocv_curve = {
      {0.00, 3.30}, {0.10, 3.60}, {0.50, 3.80}, {0.90, 4.05}, {1.00, 4.20}};
};

class Battery {
 public:
  explicit Battery(BatteryParams params, double initial_soc = 1.0);

  /// Draw `load_w` watts for `dt` seconds (coulomb counting at the
  /// terminal voltage). SoC clamps at 0; an empty battery absorbs no
  /// further charge. Raw doubles: fed from the DAQ's measured samples.
  /// MOBILINT: raw-units-ok
  void drain(double dt, double load_w);

  /// State of charge in [0, 1].
  double state_of_charge() const { return soc_; }

  /// Open-circuit voltage at the current SoC.
  double ocv_v() const;

  /// Terminal voltage under `load_w` (OCV minus IR drop). Clamped at 0.
  /// MOBILINT: raw-units-ok
  double terminal_v(double load_w) const;

  /// Remaining energy if discharged at low rate (J).
  double energy_remaining_j() const;

  /// Hours of runtime left at a constant `load_w`; infinity at zero load.
  /// MOBILINT: raw-units-ok
  double projected_runtime_s(double load_w) const;

  bool empty() const { return soc_ <= 0.0; }

 private:
  BatteryParams params_;
  double soc_;
};

}  // namespace mobitherm::power
