// cpuidle (C-state) model.
//
// Idle cores are not free: how much of the idle floor a cluster burns
// depends on how deep a sleep state the idle governor can enter, which in
// turn depends on how long the cores expect to stay idle. This models the
// kernel's menu-governor logic at cluster granularity: given the expected
// idle interval, pick the deepest state whose target residency fits, and
// report the resulting idle-power fraction.
#pragma once

#include <string>
#include <vector>

namespace mobitherm::power {

struct IdleState {
  std::string name;
  /// Fraction of the cluster's idle floor burned in this state.
  double power_fraction = 1.0;
  /// Minimum idle interval for entering this state to pay off.
  double target_residency_s = 0.0;
};

class CpuIdleModel {
 public:
  /// States must be ordered from shallowest (highest power fraction,
  /// smallest residency) to deepest. The first state must have
  /// target_residency_s == 0 (always available).
  explicit CpuIdleModel(std::vector<IdleState> states);

  /// Deepest state whose target residency fits the expected idle interval.
  /// MOBILINT: raw-units-ok
  const IdleState& select(double expected_idle_s) const;

  /// Idle-power multiplier for a cluster at `utilization` whose idle gaps
  /// are roughly (1 - utilization) * period_s long: busy time burns the
  /// full floor, idle time burns the selected state's fraction.
  /// MOBILINT: raw-units-ok
  double idle_power_fraction(double utilization, double period_s) const;

  const std::vector<IdleState>& states() const { return states_; }

  /// Typical ARM ladder: clock gating (WFI), core power-down, cluster
  /// power-down.
  static CpuIdleModel default_arm();

 private:
  std::vector<IdleState> states_;
};

}  // namespace mobitherm::power
