#include "stability/trajectory.h"

#include <cmath>

#include "thermal/lumped.h"
#include "util/error.h"

namespace mobitherm::stability {

double temperature_after(const Params& p, double p_dyn_w, double t0_k,
                         double dt) {
  thermal::LumpedModel model(p);
  model.set_temperature(util::kelvin(t0_k));
  model.step(util::watts(p_dyn_w), util::seconds(dt));
  return model.temperature_k().value();
}

double time_to_temperature(const Params& p, double p_dyn_w, double t0_k,
                           double t_target_k, double horizon_s) {
  if (t0_k <= 0.0) {
    throw util::NumericError("time_to_temperature: non-positive start");
  }
  const double initial_rate =
      thermal::temperature_derivative(p, util::kelvin(t0_k),
                                      util::watts(p_dyn_w))
          .value();
  const bool heating = t_target_k >= t0_k;
  // Already there, or moving away from the target from the start.
  if (std::abs(t_target_k - t0_k) < 1e-12) {
    return 0.0;
  }
  if ((heating && initial_rate <= 0.0) || (!heating && initial_rate >= 0.0)) {
    // The trajectory is monotone (1-D autonomous ODE), so a wrong-signed
    // initial derivative means the target is unreachable.
    return kNever;
  }

  thermal::LumpedModel model(p);
  model.set_temperature(util::kelvin(t0_k));
  const double tau = (p.c_j_per_k / p.g_w_per_k).value();
  const double step = std::min(0.02 * tau, horizon_s);
  double elapsed = 0.0;
  double prev_t = t0_k;
  while (elapsed < horizon_s) {
    model.step(util::watts(p_dyn_w), util::seconds(step));
    const double cur_t = model.temperature_k().value();
    const bool crossed =
        heating ? (cur_t >= t_target_k) : (cur_t <= t_target_k);
    if (crossed) {
      // Linear interpolation inside the step.
      const double frac = (t_target_k - prev_t) / (cur_t - prev_t);
      return elapsed + frac * step;
    }
    // Converged without crossing: asymptote is on the near side.
    if (std::abs(cur_t - prev_t) < 1e-9 * step) {
      return kNever;
    }
    prev_t = cur_t;
    elapsed += step;
  }
  return kNever;
}

double time_to_fixed_point(const Params& p, double p_dyn_w, double t0_k,
                           double band_k, double horizon_s) {
  const FixedPointResult r = analyze(p, p_dyn_w);
  if (r.cls == StabilityClass::kUnstable) {
    return kNever;
  }
  if (r.cls == StabilityClass::kStable && !std::isnan(r.unstable_temp_k) &&
      t0_k > r.unstable_temp_k) {
    return kNever;  // runaway region: diverges away from the fixed point
  }
  const double target = t0_k < r.stable_temp_k
                            ? r.stable_temp_k - band_k
                            : r.stable_temp_k + band_k;
  if ((t0_k < r.stable_temp_k && target <= t0_k) ||
      (t0_k >= r.stable_temp_k && target >= t0_k)) {
    return 0.0;  // already inside the band
  }
  return time_to_temperature(p, p_dyn_w, t0_k, target, horizon_s);
}

}  // namespace mobitherm::stability
