#include "stability/fixed_point.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace mobitherm::stability {

using util::NumericError;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Bisection for a function known to change sign on [lo, hi].
template <typename F>
double bisect(F&& f, double lo, double hi, double tol) {
  double flo = f(lo);
  for (int i = 0; i < 200 && hi - lo > tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if ((flo <= 0.0) == (fmid <= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

const char* to_string(StabilityClass cls) {
  switch (cls) {
    case StabilityClass::kStable:
      return "stable";
    case StabilityClass::kCriticallyStable:
      return "critically-stable";
    case StabilityClass::kUnstable:
      return "unstable";
  }
  return "?";
}

// The analysis runs in the dimensionless auxiliary domain, so the typed
// LumpedParams are unwrapped to raw magnitudes here (sanctioned .value()
// boundary); the expressions below are unchanged.
double fixed_point_function(const Params& p, double p_dyn_w, double x) {
  const double theta = p.leak_theta_k.value();
  const double g = p.g_w_per_k.value();
  return (g / theta) * x -
         ((g * p.t_ambient_k.value() + p_dyn_w) / (theta * theta)) * x * x -
         p.leak_a_w_per_k2.value() * std::exp(-x);
}

double fixed_point_derivative(const Params& p, double p_dyn_w, double x) {
  const double theta = p.leak_theta_k.value();
  const double g = p.g_w_per_k.value();
  return g / theta -
         2.0 * ((g * p.t_ambient_k.value() + p_dyn_w) / (theta * theta)) *
             x +
         p.leak_a_w_per_k2.value() * std::exp(-x);
}

double auxiliary_of_temperature(const Params& p, double t_k) {
  if (t_k <= 0.0) {
    throw NumericError("auxiliary_of_temperature: non-positive temperature");
  }
  return p.leak_theta_k.value() / t_k;
}

double temperature_of_auxiliary(const Params& p, double x) {
  if (x <= 0.0) {
    throw NumericError("temperature_of_auxiliary: non-positive auxiliary");
  }
  return p.leak_theta_k.value() / x;
}

FixedPointResult analyze(const Params& p, double p_dyn_w,
                         double critical_tol) {
  if (p.g_w_per_k <= util::watts_per_kelvin(0.0) ||
      p.leak_theta_k <= util::kelvin(0.0) ||
      p.t_ambient_k <= util::kelvin(0.0)) {
    throw NumericError("stability::analyze: invalid parameters");
  }
  if (p_dyn_w < 0.0) {
    throw NumericError("stability::analyze: negative dynamic power");
  }

  FixedPointResult r;

  // Leakage-free special case: f(x) = x (G/theta - c x) has the trivial
  // root x = 0 (T -> infinity) and the classic T = T_amb + P/G point.
  if (p.leak_a_w_per_k2 == util::watts_per_kelvin2(0.0)) {
    r.cls = StabilityClass::kStable;
    r.num_fixed_points = 1;
    r.stable_x = p.g_w_per_k.value() * p.leak_theta_k.value() /
                 (p.g_w_per_k.value() * p.t_ambient_k.value() + p_dyn_w);
    r.stable_temp_k = temperature_of_auxiliary(p, r.stable_x);
    r.unstable_x = kNan;
    r.unstable_temp_k = kNan;
    r.peak_x = 0.5 * r.stable_x;
    r.peak_value = fixed_point_function(p, p_dyn_w, r.peak_x);
    return r;
  }

  // f' is strictly decreasing (f is concave); find the unique argmax by
  // bisection on f' over an expanding bracket.
  auto fprime = [&](double x) {
    return fixed_point_derivative(p, p_dyn_w, x);
  };
  const double x_lo = 1e-9;
  double x_hi = 1.0;
  while (fprime(x_hi) > 0.0 && x_hi < 1e9) {
    x_hi *= 2.0;
  }
  if (fprime(x_hi) > 0.0) {
    throw NumericError("stability::analyze: argmax bracket failed");
  }
  r.peak_x = bisect(fprime, x_lo, x_hi, 1e-12 * x_hi);
  r.peak_value = fixed_point_function(p, p_dyn_w, r.peak_x);

  const double scale =
      std::max({std::abs(p.leak_a_w_per_k2.value()),
                p.g_w_per_k.value() / p.leak_theta_k.value(), 1e-12});
  if (r.peak_value < -critical_tol * scale) {
    r.cls = StabilityClass::kUnstable;
    r.num_fixed_points = 0;
    r.stable_x = r.unstable_x = kNan;
    r.stable_temp_k = r.unstable_temp_k = kNan;
    return r;
  }
  if (r.peak_value <= critical_tol * scale) {
    r.cls = StabilityClass::kCriticallyStable;
    r.num_fixed_points = 1;
    r.stable_x = r.unstable_x = r.peak_x;
    r.stable_temp_k = r.unstable_temp_k =
        temperature_of_auxiliary(p, r.peak_x);
    return r;
  }

  // Two roots: f(~0) = -A < 0 < f(peak), and f eventually goes negative to
  // the right of the peak (the -x^2 term dominates).
  auto f = [&](double x) { return fixed_point_function(p, p_dyn_w, x); };
  r.unstable_x = bisect(f, x_lo, r.peak_x, 1e-12 * r.peak_x);
  double right = 2.0 * r.peak_x;
  while (f(right) > 0.0 && right < 1e12) {
    right *= 2.0;
  }
  r.stable_x = bisect(f, r.peak_x, right, 1e-12 * right);

  r.cls = StabilityClass::kStable;
  r.num_fixed_points = 2;
  r.stable_temp_k = temperature_of_auxiliary(p, r.stable_x);
  r.unstable_temp_k = temperature_of_auxiliary(p, r.unstable_x);
  return r;
}

std::vector<double> iterate_auxiliary(const Params& p, double p_dyn_w,
                                      double x0, int steps, double gamma,
                                      double x_floor) {
  if (x0 <= 0.0) {
    throw NumericError("iterate_auxiliary: start must be positive");
  }
  if (steps < 0) {
    throw NumericError("iterate_auxiliary: negative step count");
  }
  if (gamma <= 0.0) {
    // A stable default: the inverse of |f'| at the function's peak bounds
    // the slope magnitude near the roots, keeping x_{k+1} on the same side
    // of the stable root (monotone convergence).
    const FixedPointResult r = analyze(p, p_dyn_w);
    const double slope_scale =
        std::max(std::abs(fixed_point_derivative(p, p_dyn_w,
                                                 0.5 * r.peak_x)),
                 std::abs(fixed_point_derivative(p, p_dyn_w,
                                                 2.0 * r.peak_x)));
    gamma = slope_scale > 0.0 ? 0.5 / slope_scale : 1.0;
  }
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(steps) + 1);
  xs.push_back(x0);
  double x = x0;
  for (int i = 0; i < steps; ++i) {
    x += gamma * fixed_point_function(p, p_dyn_w, x);
    if (x <= x_floor) {
      x = x_floor;  // runaway: T -> infinity corresponds to x -> 0
      xs.push_back(x);
      break;
    }
    xs.push_back(x);
  }
  return xs;
}

double critical_power(const Params& p, double p_max_w, double tol_w) {
  auto peak_value = [&](double power) {
    return analyze(p, power, 0.0).peak_value;
  };
  if (peak_value(0.0) < 0.0) {
    return 0.0;  // unstable even at zero dynamic power
  }
  if (peak_value(p_max_w) > 0.0) {
    throw NumericError("critical_power: still stable at p_max_w");
  }
  double lo = 0.0;
  double hi = p_max_w;
  while (hi - lo > tol_w) {
    const double mid = 0.5 * (lo + hi);
    if (peak_value(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double stable_temperature(const Params& p, double p_dyn_w) {
  const FixedPointResult r = analyze(p, p_dyn_w);
  if (r.cls == StabilityClass::kUnstable) {
    throw NumericError("stable_temperature: system has no fixed point");
  }
  return r.stable_temp_k;
}

}  // namespace mobitherm::stability
