#include "stability/safety.h"

#include <algorithm>
#include <cmath>

#include "thermal/lumped.h"
#include "util/error.h"

namespace mobitherm::stability {

double safe_power(const Params& p, double temp_limit_k, double tol_w) {
  if (temp_limit_k <= p.t_ambient_k.value()) {
    return 0.0;  // cannot cool below ambient with non-negative power
  }
  // At the stable fixed point: G (T - Tamb) = P + leak(T), and the stable
  // temperature increases monotonically with power, so the budget is the
  // balance power at the limit itself — provided the limit is on the
  // stable branch (below the critical temperature).
  const double balance =
      p.g_w_per_k.value() * (temp_limit_k - p.t_ambient_k.value()) -
      thermal::leakage_power(p, util::kelvin(temp_limit_k)).value();
  if (balance <= 0.0) {
    return 0.0;  // leakage alone exceeds the removable heat at the limit
  }
  // The balance power makes the limit a root of the fixed-point function,
  // but it might be the *unstable* root (limit past the peak) or exceed
  // the critical power; verify and fall back to bisection in those cases.
  double budget = balance;
  const FixedPointResult at_budget = analyze(p, budget);
  if (at_budget.cls == StabilityClass::kUnstable ||
      at_budget.stable_temp_k > temp_limit_k + 1e-6) {
    // The limit lies on the unstable branch: bisect for the largest power
    // whose stable temperature respects it.
    double lo = 0.0;
    double hi = budget;
    while (hi - lo > tol_w) {
      const double mid = 0.5 * (lo + hi);
      const FixedPointResult r = analyze(p, mid);
      if (r.cls != StabilityClass::kUnstable &&
          r.stable_temp_k <= temp_limit_k) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    budget = lo;
  }
  return budget;
}

double power_headroom(const Params& p, double temp_limit_k, double p_dyn_w) {
  return safe_power(p, temp_limit_k) - p_dyn_w;
}

SafetyReport assess(const Params& p, double temp_limit_k, double p_dyn_w) {
  if (p_dyn_w < 0.0) {
    throw util::NumericError("assess: negative dynamic power");
  }
  SafetyReport report;
  const FixedPointResult r = analyze(p, p_dyn_w);
  report.cls = r.cls;
  report.fixed_point_temp_k = r.stable_temp_k;
  report.safe_power_w = safe_power(p, temp_limit_k);
  report.headroom_w = report.safe_power_w - p_dyn_w;
  report.sustainable = r.cls != StabilityClass::kUnstable &&
                       r.stable_temp_k <= temp_limit_k + 1e-9;
  return report;
}

}  // namespace mobitherm::stability
