#include "stability/calibrate.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.h"

namespace mobitherm::stability {

using util::NumericError;

namespace {

// The tangency and critical-fixed-point conditions determine (G, A) in
// closed form for a given theta:
//   G = A e^{-theta/T_c} (2 T_c + theta)                       (tangency)
//   G (T_c - T_amb) = P_c + A T_c^2 e^{-theta/T_c}             (fixed point)
// =>  A(theta) = P_c / ( e^{-theta/T_c} [ (2 T_c + theta)(T_c - T_amb)
//                                          - T_c^2 ] ).
struct Reduced {
  double g;
  double a;
};

Reduced reduce(const CalibrationTargets& t, double theta) {
  const double e = std::exp(-theta / t.t_critical_k);
  const double denom =
      e * ((2.0 * t.t_critical_k + theta) *
               (t.t_critical_k - t.t_ambient_k) -
           t.t_critical_k * t.t_critical_k);
  if (denom <= 0.0) {
    throw NumericError("calibrate: degenerate critical-point geometry");
  }
  const double a = t.p_critical_w / denom;
  const double g = a * e * (2.0 * t.t_critical_k + theta);
  return {g, a};
}

// Residual of the steady-state observation as a function of theta alone.
double steady_residual(const CalibrationTargets& t, double theta) {
  const Reduced r = reduce(t, theta);
  const double leak = r.a * t.t_stable_k * t.t_stable_k *
                      std::exp(-theta / t.t_stable_k);
  return r.g * (t.t_stable_k - t.t_ambient_k) - t.p_observed_w - leak;
}

}  // namespace

Params calibrate(const CalibrationTargets& targets, double c_j_per_k,
                 const CalibrationGuess& guess, double tol, int max_iter) {
  (void)guess;  // retained for API stability; the 1-D reduction needs none
  if (targets.t_stable_k <= targets.t_ambient_k ||
      targets.t_critical_k <= targets.t_stable_k ||
      targets.p_critical_w <= targets.p_observed_w) {
    throw NumericError(
        "calibrate: targets must satisfy T_amb < T_s < T_c and P_a < P_c");
  }
  if (c_j_per_k <= 0.0) {
    throw NumericError("calibrate: capacitance must be positive");
  }

  // The reduction is only defined for theta above the geometric bound where
  // (2 T_c + theta)(T_c - T_amb) exceeds T_c^2.
  const double theta_min =
      targets.t_critical_k * targets.t_critical_k /
          (targets.t_critical_k - targets.t_ambient_k) -
      2.0 * targets.t_critical_k;

  // Scan theta for a sign change of the steady-state residual, then bisect.
  const double theta_lo = std::max(200.0, 1.01 * theta_min);
  const double theta_hi = 20000.0;
  const int kScanSteps = 400;
  double prev_theta = theta_lo;
  double prev_res = steady_residual(targets, prev_theta);
  double lo = 0.0;
  double hi = 0.0;
  bool bracketed = false;
  for (int i = 1; i <= kScanSteps; ++i) {
    const double theta =
        theta_lo * std::pow(theta_hi / theta_lo,
                            static_cast<double>(i) / kScanSteps);
    const double res = steady_residual(targets, theta);
    if ((prev_res <= 0.0) != (res <= 0.0)) {
      lo = prev_theta;
      hi = theta;
      bracketed = true;
      break;
    }
    prev_theta = theta;
    prev_res = res;
  }
  if (!bracketed) {
    throw NumericError(
        "calibrate: no leakage constant fits these targets (residual at "
        "theta=1000 is " +
        std::to_string(steady_residual(targets, 1000.0)) +
        " W); adjust t_stable_k or p_observed_w");
  }

  double flo = steady_residual(targets, lo);
  for (int i = 0; i < max_iter && hi - lo > tol * hi; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = steady_residual(targets, mid);
    if ((flo <= 0.0) == (fmid <= 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  const double theta = 0.5 * (lo + hi);
  const Reduced r = reduce(targets, theta);

  Params p;
  p.g_w_per_k = util::watts_per_kelvin(r.g);
  p.leak_a_w_per_k2 = util::watts_per_kelvin2(r.a);
  p.leak_theta_k = util::kelvin(theta);
  p.t_ambient_k = util::kelvin(targets.t_ambient_k);
  p.c_j_per_k = util::joules_per_kelvin(c_j_per_k);
  return p;
}

}  // namespace mobitherm::stability
