// Stability-analysis parameter presets for the two boards.
//
// The Odroid-XU3 set reproduces the calibration behind Fig. 7: with ~25 degC
// ambient, a 2 W workload settles around 63 degC and the critical power is
// 5.5 W — the power at which the two roots of the fixed-point function merge
// in Fig. 7b.
#pragma once

#include "stability/fixed_point.h"

namespace mobitherm::stability {

/// Odroid-XU3 (Exynos 5422), fan disabled. Critical power = 5.5 W.
Params odroid_xu3_params();

/// Nexus 6P (Snapdragon 810) phone package.
Params nexus6p_params();

}  // namespace mobitherm::stability
