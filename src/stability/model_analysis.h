// Fixed-point / stability analysis re-derived per leakage model.
//
// Sec. IV-A's analysis (fixed_point.h) is specific to the BSIM quadratic
// leakage A T^2 e^{-theta/T}: its auxiliary-temperature trick x = theta/T
// only makes f(x) concave for that functional form. When the power model is
// pluggable (power::ModelRegistry), the stability check must be re-derived
// per model. This module dispatches on power::LeakageForm:
//
//  * kBsim delegates to the auxiliary-temperature analysis unchanged.
//  * kExpTempBias (De Vogeleer, P_leak = A_e e^{B T}) is analyzed directly
//    in temperature. The steady-state residual
//        h(T) = P_dyn + A_e e^{B T} - G (T - T_amb)
//    is convex with h -> +inf at both ends, so it has 0, 1 or 2 roots. Its
//    minimum is at the tangency temperature
//        T* = ln(G / (A_e B)) / B,
//    which yields the critical power in closed form:
//        P_crit = G (T* - T_amb) - G / B.
//    For P_dyn < P_crit the *lower* root is the stable fixed point
//    (sign(h) = sign(dT/dt): below it the device heats toward it, between
//    the roots it cools back to it, above the upper root it runs away), so
//    the upper root is the point of no return.
//
// The runaway guard in the service layer is wired through this module: a
// non-baseline model clamps the configured guard threshold to its own
// derived point of no return.
#pragma once

#include "power/model.h"
#include "stability/fixed_point.h"

namespace mobitherm::stability {

/// Result of analyzing the lumped dynamics under one leakage model.
struct ModelFixedPoint {
  StabilityClass cls = StabilityClass::kUnstable;
  int num_fixed_points = 0;
  /// Fixed points as actual temperatures (K); stable < unstable when both
  /// exist. NaN when absent.
  double stable_temp_k = 0.0;
  double unstable_temp_k = 0.0;
  /// Largest dynamic power with at least one fixed point.
  double critical_power_w = 0.0;
};

// Like fixed_point.h, this module's API works in plain SI magnitudes so
// powers and temperatures can be swept and bisected directly.
// MOBILINT: raw-units-ok

/// Lumped leakage power of `leakage` at temperature `t_k` (nominal
/// voltage), whichever functional form is selected.
double model_leakage_w(const power::LeakageParams& leakage, double t_k);

/// Full fixed-point analysis of C dT/dt = -G (T - T_amb) + P_dyn + L(T)
/// where G/T_amb come from `base` and L is `leakage`'s strategy.
ModelFixedPoint analyze_model(const thermal::LumpedParams& base,
                              const power::LeakageParams& leakage,
                              double p_dyn_w, double critical_tol = 1e-9);

/// Critical power of the dynamics under `leakage` (closed form for the
/// exponential model, bisection for the baseline).
double model_critical_power(const thermal::LumpedParams& base,
                            const power::LeakageParams& leakage);

/// Steady-state temperature at `p_dyn_w`; throws util::NumericError when
/// the model has no fixed point (runaway at any start).
double model_stable_temperature(const thermal::LumpedParams& base,
                                const power::LeakageParams& leakage,
                                double p_dyn_w);

/// Point of no return at `p_dyn_w`: the unstable fixed point, above which
/// the dynamics diverge even if dynamic power never rises again. Throws
/// util::NumericError when the model has no fixed points.
double model_no_return_temp_k(const thermal::LumpedParams& base,
                              const power::LeakageParams& leakage,
                              double p_dyn_w);

}  // namespace mobitherm::stability
