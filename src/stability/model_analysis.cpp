#include "stability/model_analysis.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace mobitherm::stability {

using util::ConfigError;
using util::NumericError;

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The baseline analysis parameters with the leakage calibration taken
/// from `leakage` (the base LumpedParams carry their own copy, which may
/// be stale relative to the selected model).
Params baseline_params(const thermal::LumpedParams& base,
                       const power::LeakageParams& leakage) {
  Params p = base;
  p.leak_a_w_per_k2 = leakage.a_w_per_k2;
  p.leak_theta_k = leakage.theta_k;
  return p;
}

struct ExpDynamics {
  double g;     // conductance to ambient, W/K
  double tamb;  // ambient temperature, K
  double a;     // exponential prefactor A_e, W
  double b;     // exponential slope B, 1/K
};

ExpDynamics exp_dynamics(const thermal::LumpedParams& base,
                         const power::LeakageParams& leakage) {
  ExpDynamics d;
  d.g = base.g_w_per_k.value();
  d.tamb = base.t_ambient_k.value();
  d.a = leakage.exp_a_w.value();
  d.b = leakage.exp_b_per_k;
  if (d.g <= 0.0 || d.a <= 0.0 || d.b <= 0.0) {
    throw ConfigError(
        "model_analysis: exponential model requires positive G, A_e, B");
  }
  return d;
}

/// Steady-state residual h(T) = P_dyn + A e^{BT} - G (T - Tamb);
/// sign(h) = sign(dT/dt).
double exp_residual(const ExpDynamics& d, double p_dyn_w, double t_k) {
  return p_dyn_w + d.a * std::exp(d.b * t_k) - d.g * (t_k - d.tamb);
}

/// Tangency temperature T* = ln(G / (A B)) / B, the argmin of convex h.
double exp_tangency_temp(const ExpDynamics& d) {
  return std::log(d.g / (d.a * d.b)) / d.b;
}

/// Bisect h for a root in [lo, hi] given sign(h(lo)) != sign(h(hi)).
double exp_bisect(const ExpDynamics& d, double p_dyn_w, double lo, double hi) {
  double f_lo = exp_residual(d, p_dyn_w, lo);
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double f_mid = exp_residual(d, p_dyn_w, mid);
    if ((f_lo > 0.0) == (f_mid > 0.0)) {
      lo = mid;
      f_lo = f_mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ModelFixedPoint analyze_exp(const ExpDynamics& d, double p_dyn_w,
                            double critical_tol) {
  if (p_dyn_w < 0.0) {
    throw ConfigError("model_analysis: dynamic power must be non-negative");
  }
  const double t_star = exp_tangency_temp(d);
  const double critical_w = d.g * (t_star - d.tamb) - d.g / d.b;
  const double h_min = p_dyn_w - critical_w;  // = h(t_star)

  ModelFixedPoint result;
  result.critical_power_w = critical_w;
  if (h_min > critical_tol) {
    result.cls = StabilityClass::kUnstable;
    result.num_fixed_points = 0;
    result.stable_temp_k = kNaN;
    result.unstable_temp_k = kNaN;
    return result;
  }
  if (h_min >= -critical_tol) {
    result.cls = StabilityClass::kCriticallyStable;
    result.num_fixed_points = 1;
    result.stable_temp_k = t_star;
    result.unstable_temp_k = t_star;
    return result;
  }
  // Two roots. h -> +inf on both sides of the minimum; expand brackets
  // until the sign flips, then bisect.
  double lo = std::min(d.tamb, t_star);
  double step = std::max(1.0, 0.1 * (t_star - lo));
  while (exp_residual(d, p_dyn_w, lo) <= 0.0) {
    lo -= step;
    step *= 2.0;
  }
  double hi = t_star;
  step = std::max(1.0, 0.1 * (t_star - d.tamb));
  while (exp_residual(d, p_dyn_w, hi + step) <= 0.0) {
    hi += step;
    step *= 2.0;
  }
  result.cls = StabilityClass::kStable;
  result.num_fixed_points = 2;
  result.stable_temp_k = exp_bisect(d, p_dyn_w, lo, t_star);
  result.unstable_temp_k = exp_bisect(d, p_dyn_w, t_star, hi + step);
  return result;
}

}  // namespace

double model_leakage_w(const power::LeakageParams& leakage, double t_k) {
  if (leakage.form == power::LeakageForm::kBsim) {
    return leakage.a_w_per_k2.value() * t_k * t_k *
           std::exp(-leakage.theta_k.value() / t_k);
  }
  return leakage.exp_a_w.value() * std::exp(leakage.exp_b_per_k * t_k);
}

ModelFixedPoint analyze_model(const thermal::LumpedParams& base,
                              const power::LeakageParams& leakage,
                              double p_dyn_w, double critical_tol) {
  if (leakage.form == power::LeakageForm::kBsim) {
    const Params p = baseline_params(base, leakage);
    const FixedPointResult r = analyze(p, p_dyn_w, critical_tol);
    ModelFixedPoint result;
    result.cls = r.cls;
    result.num_fixed_points = r.num_fixed_points;
    result.stable_temp_k = r.stable_temp_k;
    result.unstable_temp_k = r.unstable_temp_k;
    result.critical_power_w = critical_power(p);
    return result;
  }
  return analyze_exp(exp_dynamics(base, leakage), p_dyn_w, critical_tol);
}

double model_critical_power(const thermal::LumpedParams& base,
                            const power::LeakageParams& leakage) {
  if (leakage.form == power::LeakageForm::kBsim) {
    return critical_power(baseline_params(base, leakage));
  }
  const ExpDynamics d = exp_dynamics(base, leakage);
  const double t_star = exp_tangency_temp(d);
  return d.g * (t_star - d.tamb) - d.g / d.b;
}

double model_stable_temperature(const thermal::LumpedParams& base,
                                const power::LeakageParams& leakage,
                                double p_dyn_w) {
  const ModelFixedPoint r = analyze_model(base, leakage, p_dyn_w);
  if (r.num_fixed_points == 0) {
    throw NumericError(
        "model_stable_temperature: no fixed point (thermal runaway)");
  }
  return r.stable_temp_k;
}

double model_no_return_temp_k(const thermal::LumpedParams& base,
                              const power::LeakageParams& leakage,
                              double p_dyn_w) {
  const ModelFixedPoint r = analyze_model(base, leakage, p_dyn_w);
  if (r.num_fixed_points == 0) {
    throw NumericError(
        "model_no_return_temp_k: no fixed point (thermal runaway)");
  }
  return r.unstable_temp_k;
}

}  // namespace mobitherm::stability
