// Temperature trajectories of the lumped power-temperature dynamics and
// the time-to-fixed-point estimate the proposed governor uses (Sec. IV-B):
// "the algorithm estimates the time it will take for the system to reach
// the fixed point".
#pragma once

#include <limits>

#include "stability/fixed_point.h"

namespace mobitherm::stability {

inline constexpr double kNever = std::numeric_limits<double>::infinity();

/// Temperature after `dt` seconds starting at `t0_k` under constant dynamic
/// power (adaptive RK4 integration).
double temperature_after(const Params& p, double p_dyn_w, double t0_k,
                         double dt);

/// Time for the trajectory starting at `t0_k` to first reach
/// `t_target_k`, under constant dynamic power. Returns kNever if the target
/// is never reached within `horizon_s` (e.g. the target lies beyond the
/// stable fixed point the trajectory converges to) and 0 if already past it
/// in the direction of travel.
double time_to_temperature(const Params& p, double p_dyn_w, double t0_k,
                           double t_target_k, double horizon_s = 3600.0);

/// Time to get within `band_k` kelvin of the stable fixed-point
/// temperature; kNever if the system is unstable (no fixed point) or the
/// start lies in the runaway region left of the unstable fixed point.
double time_to_fixed_point(const Params& p, double p_dyn_w, double t0_k,
                           double band_k = 0.5, double horizon_s = 3600.0);

}  // namespace mobitherm::stability
