// Calibration of the lumped power-temperature model from measurable
// targets. Given an ambient temperature and
//   * one steady-state observation (stable temperature T_s at power P_a),
//   * the critical power P_c and the critically-stable temperature T_c,
// solve for (G, A, theta) such that
//   G (T_s - T_amb) = P_a + A T_s^2 e^{-theta/T_s}          (steady state)
//   G (T_c - T_amb) = P_c + A T_c^2 e^{-theta/T_c}          (fixed point)
//   G = A e^{-theta/T_c} (2 T_c + theta)                    (tangency)
// The tangency and critical-fixed-point equations determine A(theta) and
// G(theta) in closed form; the steady-state observation then becomes a 1-D
// root-finding problem in theta, solved by bracketing + bisection. This is
// how the board presets are derived, and it lets users re-fit the analyzer
// to their own measurements.
#pragma once

#include "stability/fixed_point.h"

namespace mobitherm::stability {

struct CalibrationTargets {
  double t_ambient_k = 298.15;
  /// Steady-state observation.
  double p_observed_w = 2.0;
  double t_stable_k = 336.0;
  /// Runaway boundary.
  double p_critical_w = 5.5;
  double t_critical_k = 450.0;
};

struct CalibrationGuess {
  double g_w_per_k = 0.07;
  double a_w_per_k2 = 1.5e-3;
  double theta_k = 1800.0;
};

/// Solve for (G, A, theta); C and T_amb are copied through (C from
/// `c_j_per_k`). Throws NumericError if Newton fails to converge.
Params calibrate(const CalibrationTargets& targets, double c_j_per_k,
                 const CalibrationGuess& guess = {}, double tol = 1e-10,
                 int max_iter = 200);

}  // namespace mobitherm::stability
