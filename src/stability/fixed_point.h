// Power-temperature stability analysis (paper Sec. IV-A, ref. [2]).
//
// The lumped dynamics  C dT/dt = -G (T - T_amb) + P_dyn + A T^2 e^{-theta/T}
// are rewritten in the auxiliary temperature x = theta / T (inversely
// proportional to the actual temperature, as in the paper). Multiplying the
// steady-state balance by x^2/theta^2 gives the fixed-point function
//
//     f(x) = (G/theta) x - ((G T_amb + P_dyn)/theta^2) x^2 - A e^{-x}
//
// with the properties the paper illustrates in Fig. 7:
//  * f is concave everywhere:  f'' = -2 (G T_amb + P_dyn)/theta^2 - A e^{-x} < 0,
//  * f < 0 at both ends of the positive axis, so f has 0, 1 or 2 roots,
//  * sign(f(x)) = sign(dx/dt): between two roots the auxiliary temperature
//    increases, so the larger root (lower actual temperature) is the stable
//    fixed point and the smaller root is unstable,
//  * increasing P_dyn only lowers f, so the roots approach each other,
//    merge at the critical power (critically stable) and then vanish
//    (thermal runaway).
#pragma once

#include <vector>

#include "thermal/lumped.h"

namespace mobitherm::stability {

/// Parameters of the analysis; identical to the lumped thermal model
/// parameters (C is only needed for trajectories, not for fixed points).
using Params = thermal::LumpedParams;

enum class StabilityClass {
  kStable,            // two fixed points; trajectories right of the
                      // unstable one converge to the stable one
  kCriticallyStable,  // roots have merged (within tolerance)
  kUnstable           // no fixed point: thermal runaway for any start
};

const char* to_string(StabilityClass cls);

/// Result of analyzing the dynamics at one dynamic power level.
struct FixedPointResult {
  StabilityClass cls = StabilityClass::kUnstable;
  int num_fixed_points = 0;

  /// Auxiliary-temperature roots; stable_x > unstable_x when both exist.
  /// NaN when absent.
  double stable_x = 0.0;
  double unstable_x = 0.0;

  /// The same fixed points as actual temperatures (K); the *stable* one is
  /// the lower temperature. NaN when absent.
  double stable_temp_k = 0.0;
  double unstable_temp_k = 0.0;

  /// Argmax / max of the concave fixed-point function; max < 0 means no
  /// fixed points, max ~ 0 critical.
  double peak_x = 0.0;
  double peak_value = 0.0;
};

// This module's API stays in the raw auxiliary/analysis domain: x is
// dimensionless and powers/temperatures are plain SI magnitudes (watts,
// kelvin) so they can be swept, bisected and plotted directly.
// MOBILINT: raw-units-ok

/// The fixed-point function f(x) at dynamic power `p_dyn_w`.
double fixed_point_function(const Params& p, double p_dyn_w, double x);

/// df/dx.
double fixed_point_derivative(const Params& p, double p_dyn_w, double x);

/// Convert between auxiliary and actual temperature: x = theta / T.
double auxiliary_of_temperature(const Params& p, double t_k);
double temperature_of_auxiliary(const Params& p, double x);

/// Full fixed-point analysis at the given dynamic power.
/// `critical_tol` is the peak-value tolerance below which the system is
/// reported critically stable.
FixedPointResult analyze(const Params& p, double p_dyn_w,
                         double critical_tol = 1e-9);

/// Largest dynamic power with at least one fixed point, found by bisection
/// on the (monotonically decreasing) peak value of f.
double critical_power(const Params& p, double p_max_w = 100.0,
                      double tol_w = 1e-6);

/// Steady-state (stable fixed point) temperature at `p_dyn_w`; throws
/// NumericError if the system has no fixed point.
double stable_temperature(const Params& p, double p_dyn_w);

/// The fixed-point iteration Fig. 7's arrows illustrate: the auxiliary
/// temperature moves in the direction of f's sign (x_{k+1} = x_k +
/// gamma f(x_k), gamma > 0), so iterates between the roots climb toward
/// the larger (stable) root, iterates right of it fall back to it, and
/// iterates left of the unstable root run away toward x -> 0 (T -> inf).
/// Returns the iterate sequence including the start. `gamma` is clamped
/// to keep steps stable; iteration stops early at `x_floor` (runaway).
std::vector<double> iterate_auxiliary(const Params& p, double p_dyn_w,
                                      double x0, int steps,
                                      double gamma = 0.0,
                                      double x_floor = 1e-3);

}  // namespace mobitherm::stability
