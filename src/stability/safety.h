// Safe-power budgeting on top of the fixed-point analysis.
//
// The paper's conclusions point at using the stability analysis to drive
// power budgets ("Theoretical analysis ... can guide the utilization of
// different resources"), and ref. [1] (Bhat et al., TVLSI'18) derives
// budgets from temperature predictions. This module provides the inverse
// queries a budget-based governor needs:
//
//  * safe_power(limit): the largest dynamic power whose *stable fixed
//    point* stays at/below a temperature limit — the sustainable budget;
//  * power_headroom / power_excess: distance between a measured power and
//    that budget;
//  * margin report combining class, fixed point, budget and headroom.
#pragma once

#include "stability/fixed_point.h"

namespace mobitherm::stability {

/// Largest dynamic power whose stable fixed point is <= `temp_limit_k`.
/// Returns 0 if even idle exceeds the limit. The result is capped by the
/// critical power (beyond it there is no fixed point at all). `tol_w`
/// controls the bisection resolution.
double safe_power(const Params& p, double temp_limit_k, double tol_w = 1e-6);

/// safe_power(limit) - p_dyn_w: positive = headroom, negative = the amount
/// of power that must be shed to make the limit sustainable.
double power_headroom(const Params& p, double temp_limit_k, double p_dyn_w);

/// Complete safety assessment at one operating point.
struct SafetyReport {
  StabilityClass cls = StabilityClass::kStable;
  /// Stable fixed-point temperature (NaN when unstable).
  double fixed_point_temp_k = 0.0;
  /// Sustainable dynamic power for the limit.
  double safe_power_w = 0.0;
  /// safe_power_w - p_dyn_w.
  double headroom_w = 0.0;
  /// True if the current power's fixed point respects the limit.
  bool sustainable = false;
};

SafetyReport assess(const Params& p, double temp_limit_k, double p_dyn_w);

}  // namespace mobitherm::stability
