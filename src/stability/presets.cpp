#include "stability/presets.h"

#include "stability/calibrate.h"

namespace mobitherm::stability {

Params odroid_xu3_params() {
  // Calibration consistent with thermal::odroidxu3_network() (lumped
  // ambient conductance ~0.078 W/K): a 2 W workload settles near 65 degC,
  // and the roots of the fixed-point function merge at 5.5 W as in Fig. 7b.
  CalibrationTargets targets;
  targets.t_ambient_k = 298.15;
  targets.p_observed_w = 2.0;
  targets.t_stable_k = 338.0;
  targets.p_critical_w = 5.5;
  targets.t_critical_k = 450.0;
  return calibrate(targets, /*c_j_per_k=*/5.9);
}

Params nexus6p_params() {
  // Direct characterization consistent with thermal::nexus6p_network():
  // the phone chassis spreads heat better (G ~ 0.18 W/K) and leaks ~0.42 W
  // at a 47 degC package temperature.
  Params p;
  p.g_w_per_k = util::watts_per_kelvin(0.18);
  p.c_j_per_k = util::joules_per_kelvin(8.1);
  p.t_ambient_k = util::kelvin(298.15);
  p.leak_theta_k = util::kelvin(2000.0);
  p.leak_a_w_per_k2 = util::watts_per_kelvin2(2.125e-3);
  return p;
}

}  // namespace mobitherm::stability
