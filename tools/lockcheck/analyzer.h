// Concurrency analyzer over lexed C++ — the checks behind `lockcheck`.
//
// The analyzer consumes a set of files (headers + sources) as one program
// and reports four classes of defect:
//
//   lock-order-cycle   The interprocedural lock-order graph has a cycle:
//                      some execution acquires A then B while another
//                      acquires B then A — a deadlock waiting for load.
//                      Edges come from direct nesting (a guard declared
//                      while another is live) and from calls made with
//                      locks held into functions whose transitive summary
//                      acquires more locks. REQUIRES(m) annotations parsed
//                      from headers seed the held-set of `*_locked()`
//                      helpers, so the graph sees through the repo's
//                      private-helper idiom.
//
//   wait-holding-two   A condition_variable wait runs while a second lock
//                      is held. The wait releases only the lock it was
//                      given; every other held mutex blocks all writers
//                      for the whole sleep — a classic throughput collapse
//                      that TSA does not flag.
//
//   blocking-in-loop   A blocking call (sleep, system, cv wait, blocking
//                      socket I/O, ...) is reachable through the call
//                      graph from a function marked `// LOCKCHECK:
//                      event-loop`. One stalled callback freezes every
//                      connection the loop serves.
//
//   fd-cloexec/fd-leak File-descriptor hygiene: descriptor-creating calls
//                      must pass their *_CLOEXEC flag, and a descriptor
//                      stored in a local must be closed or handed off
//                      (member/container/return) before every exit on the
//                      paths where it is valid.
//
// False-positive escape hatch: a `// LOCKCHECK: ok(reason)` comment on the
// flagged line (or the line above) suppresses findings at that site; on a
// call site it also prunes that edge from event-loop reachability. The
// reason is mandatory — `ok()` without one is itself reported.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace lockcheck {

struct Finding {
  std::string rule;  // "lock-order-cycle", "wait-holding-two", ...
  std::string file;
  int line;
  std::string message;
};

struct FileInput {
  std::string path;
  std::string source;
};

/// Analyze all inputs as one program. Findings are sorted by
/// (file, line, rule) and deduplicated.
std::vector<Finding> analyze(const std::vector<FileInput>& inputs);

/// Self-test: `fixtures` are analyzed one file at a time; each file
/// declares its expected findings with `// LOCKCHECK-EXPECT: <rule>`
/// comments (one per expected finding; a fixture with none must analyze
/// clean). Returns a human-readable failure list, empty on success.
std::vector<std::string> self_test(const std::vector<FileInput>& fixtures);

}  // namespace lockcheck
