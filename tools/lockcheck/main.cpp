// lockcheck — concurrency and fd-hygiene static analysis for this repo.
//
// Usage:
//   lockcheck [--root DIR]... [FILE]...
//       Analyze the given files (plus every .h/.cpp under each --root) as
//       one program and print findings as `file:line: [rule] message`.
//       Exit 1 when anything is found.
//
//   lockcheck --self-test --fixtures DIR
//       Analyze each lockcheck_*.cpp fixture in DIR in isolation and
//       compare the findings against its `// LOCKCHECK-EXPECT: <rule>`
//       comments. Exit 1 on any mismatch. This is the tool's own
//       regression test (registered in ctest next to mobilint's).
//
// See analyzer.h for the rule catalogue and DESIGN.md section 15 for the
// lock hierarchy the lock-order rule protects.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace {

namespace fs = std::filesystem;

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool source_like(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: lockcheck [--root DIR]... [FILE]...\n"
               "       lockcheck --self-test --fixtures DIR\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  std::string fixtures_dir;
  std::vector<std::string> roots;
  std::vector<std::string> paths;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--fixtures") {
      if (++a >= argc) return usage();
      fixtures_dir = argv[a];
    } else if (arg == "--root") {
      if (++a >= argc) return usage();
      roots.push_back(argv[a]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (self_test) {
    if (fixtures_dir.empty()) return usage();
    std::vector<lockcheck::FileInput> fixtures;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(fixtures_dir, ec)) {
      const fs::path p = entry.path();
      if (p.filename().string().rfind("lockcheck_", 0) != 0) continue;
      if (!source_like(p)) continue;
      std::string src;
      if (!read_file(p.string(), &src)) {
        std::cerr << "lockcheck: cannot read " << p << "\n";
        return 2;
      }
      fixtures.push_back({p.string(), std::move(src)});
    }
    if (ec || fixtures.empty()) {
      std::cerr << "lockcheck: no lockcheck_* fixtures in " << fixtures_dir
                << "\n";
      return 2;
    }
    std::sort(fixtures.begin(), fixtures.end(),
              [](const auto& a, const auto& b) { return a.path < b.path; });
    const std::vector<std::string> failures = lockcheck::self_test(fixtures);
    if (!failures.empty()) {
      for (const std::string& f : failures) {
        std::cerr << "FAIL " << f << "\n";
      }
      std::cerr << failures.size() << " fixture(s) failed\n";
      return 1;
    }
    std::cout << "lockcheck self-test: " << fixtures.size()
              << " fixtures ok\n";
    return 0;
  }

  for (const std::string& root : roots) {
    std::error_code ec;
    for (auto it = fs::recursive_directory_iterator(root, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file() && source_like(it->path())) {
        paths.push_back(it->path().string());
      }
    }
    if (ec) {
      std::cerr << "lockcheck: cannot walk " << root << ": " << ec.message()
                << "\n";
      return 2;
    }
  }
  if (paths.empty()) return usage();
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<lockcheck::FileInput> inputs;
  inputs.reserve(paths.size());
  for (const std::string& p : paths) {
    std::string src;
    if (!read_file(p, &src)) {
      std::cerr << "lockcheck: cannot read " << p << "\n";
      return 2;
    }
    inputs.push_back({p, std::move(src)});
  }

  const std::vector<lockcheck::Finding> findings = lockcheck::analyze(inputs);
  for (const lockcheck::Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << findings.size() << " finding(s)\n";
    return 1;
  }
  std::cout << "lockcheck: " << inputs.size() << " files clean\n";
  return 0;
}
