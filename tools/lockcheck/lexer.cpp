#include "lexer.h"

#include <cctype>

namespace lockcheck {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuators we keep as one token. Only the ones the analyzer
// actually inspects matter (`::`, `->`, `==`, `!=`, `<=`, `>=`); the rest
// are kept whole so they never masquerade as two interesting tokens.
const char* const kPuncts3[] = {"<<=", ">>=", "...", "->*"};
const char* const kPuncts2[] = {"::", "->", "==", "!=", "<=", ">=", "&&",
                                "||", "++", "--", "+=", "-=", "*=", "/=",
                                "%=", "&=", "|=", "^=", "<<", ">>", ".*"};

}  // namespace

TokenStream lex(const std::string& source) {
  TokenStream out;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  bool code_on_line = false;

  auto peek = [&](std::size_t ahead) -> char {
    return i + ahead < n ? source[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      code_on_line = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop to end of line (honoring continuations).
    if (c == '#' && !code_on_line) {
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      std::size_t end = start;
      while (end < n && source[end] != '\n') ++end;
      out.comments.push_back(
          {source.substr(start, end - start), line, code_on_line});
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t start = i + 2;
      std::size_t end = start;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/')) {
        if (source[end] == '\n') ++line;
        ++end;
      }
      out.comments.push_back(
          {source.substr(start, end - start), start_line, code_on_line});
      i = end + 1 < n ? end + 2 : n;
      continue;
    }
    if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(source[end])) ++end;
      // Raw string literal: R"delim(...)delim"
      if (source[end] == '"' && (source.compare(i, end - i, "R") == 0 ||
                                 source.compare(i, end - i, "u8R") == 0 ||
                                 source.compare(i, end - i, "uR") == 0 ||
                                 source.compare(i, end - i, "UR") == 0 ||
                                 source.compare(i, end - i, "LR") == 0)) {
        std::size_t d = end + 1;
        while (d < n && source[d] != '(') ++d;
        const std::string close =
            ")" + source.substr(end + 1, d - end - 1) + "\"";
        std::size_t term = source.find(close, d);
        if (term == std::string::npos) term = n - close.size();
        for (std::size_t k = i; k < term + close.size() && k < n; ++k) {
          if (source[k] == '\n') ++line;
        }
        out.tokens.push_back({TokKind::kString, "\"\"", line});
        i = term + close.size();
        code_on_line = true;
        continue;
      }
      out.tokens.push_back({TokKind::kIdent, source.substr(i, end - i), line});
      i = end;
      code_on_line = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t end = i;
      while (end < n && (ident_char(source[end]) || source[end] == '.' ||
                         ((source[end] == '+' || source[end] == '-') &&
                          end > i &&
                          (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                           source[end - 1] == 'p' || source[end - 1] == 'P')))) {
        ++end;
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(i, end - i), line});
      i = end;
      code_on_line = true;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      while (end < n && source[end] != quote && source[end] != '\n') {
        if (source[end] == '\\' && end + 1 < n) ++end;
        ++end;
      }
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            source.substr(i, end + 1 - i), line});
      i = end < n ? end + 1 : n;
      code_on_line = true;
      continue;
    }
    // Punctuator: longest match first.
    bool matched = false;
    for (const char* p : kPuncts3) {
      if (source.compare(i, 3, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += 3;
        matched = true;
        break;
      }
    }
    if (!matched) {
      for (const char* p : kPuncts2) {
        if (source.compare(i, 2, p) == 0) {
          out.tokens.push_back({TokKind::kPunct, p, line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
    code_on_line = true;
  }
  return out;
}

}  // namespace lockcheck
