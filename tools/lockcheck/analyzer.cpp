#include "analyzer.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace lockcheck {

namespace {

// ---------------------------------------------------------------------------
// Small token helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

bool is(const Token& t, const char* text) { return t.text == text; }

const std::set<std::string>& keywords() {
  static const std::set<std::string> k = {
      "if",       "for",     "while",    "switch",   "return", "sizeof",
      "catch",    "throw",   "new",      "delete",   "do",     "else",
      "case",     "default", "alignof",  "decltype", "assert", "noexcept",
      "static_assert"};
  return k;
}

// Guard/annotation vocabulary.
const std::set<std::string>& guard_types() {
  static const std::set<std::string> g = {"lock_guard", "unique_lock",
                                          "scoped_lock", "shared_lock",
                                          "MutexLock",  "UniqueLock",
                                          "RoleGuard"};
  return g;
}

bool relockable_guard(const std::string& g) {
  return g == "unique_lock" || g == "UniqueLock";
}

const std::set<std::string>& cv_member_types() {
  static const std::set<std::string> t = {"CondVar", "condition_variable",
                                          "condition_variable_any"};
  return t;
}

const std::set<std::string>& mutex_types() {
  static const std::set<std::string> t = {"Mutex", "mutex", "ThreadRole",
                                          "recursive_mutex", "shared_mutex",
                                          "timed_mutex"};
  return t;
}

const std::set<std::string>& wait_names() {
  static const std::set<std::string> w = {"wait", "wait_for", "wait_until"};
  return w;
}

// Calls that block regardless of qualification.
const std::set<std::string>& blocking_names() {
  static const std::set<std::string> b = {
      "sleep",     "usleep", "nanosleep", "sleep_for", "sleep_until",
      "system",    "popen",  "pause",     "sem_wait",  "flock",
      "fsync",     "fdatasync", "connect", "getline",  "getchar"};
  return b;
}

// Syscalls that block only in their global-qualified form (`::recv`); a
// member function of the same name (`stream.read(...)`) is not a syscall.
const std::set<std::string>& blocking_global_names() {
  static const std::set<std::string> b = {"read",  "write",   "recv",
                                          "send",  "recvfrom", "sendto",
                                          "accept"};
  return b;
}

// fd-creating calls; value = the CLOEXEC flag they accept, empty when the
// call has no flags argument (so a CLOEXEC-capable replacement exists).
const std::map<std::string, std::string>& fd_creators() {
  static const std::map<std::string, std::string> c = {
      {"socket", "SOCK_CLOEXEC"},       {"accept4", "SOCK_CLOEXEC"},
      {"eventfd", "EFD_CLOEXEC"},       {"epoll_create1", "EPOLL_CLOEXEC"},
      {"open", "O_CLOEXEC"},            {"openat", "O_CLOEXEC"},
      {"pipe2", "O_CLOEXEC"},           {"timerfd_create", "TFD_CLOEXEC"},
      {"signalfd", "SFD_CLOEXEC"},      {"inotify_init1", "IN_CLOEXEC"},
      {"memfd_create", "MFD_CLOEXEC"},  {"accept", ""},
      {"dup", ""},                      {"epoll_create", ""},
      {"pipe", ""},                     {"creat", ""}};
  return c;
}

// Passing an fd here transfers nothing: the call uses the descriptor but
// ownership stays with the caller. Anything NOT listed counts as an escape
// (stored in a container, a struct, a registry, ...), which deliberately
// errs toward missing leaks rather than inventing them.
const std::set<std::string>& fd_non_owning() {
  static const std::set<std::string> n = {
      "close",      "setsockopt", "getsockopt", "epoll_ctl",  "fcntl",
      "ioctl",      "getsockname", "getpeername", "bind",     "listen",
      "shutdown",   "recv",       "send",       "read",       "write",
      "recvfrom",   "sendto",     "connect",    "find",       "count",
      "at",         "erase",      "contains",   "to_string"};
  return n;
}

// ---------------------------------------------------------------------------
// Per-file directive maps (from comments)
// ---------------------------------------------------------------------------

struct Directives {
  std::set<int> ok_lines;         // lines carrying LOCKCHECK: ok(reason)
  std::set<int> empty_ok_lines;   // ok() with no reason — itself a finding
  std::vector<int> event_loop_lines;  // LOCKCHECK: event-loop markers
  std::vector<std::string> expects;   // LOCKCHECK-EXPECT: <rule>
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

Directives parse_directives(const std::vector<Comment>& comments) {
  Directives d;
  for (const Comment& c : comments) {
    const std::string text = trim(c.text);
    const std::string ok_prefix = "LOCKCHECK: ok(";
    const std::string loop_marker = "LOCKCHECK: event-loop";
    const std::string expect_prefix = "LOCKCHECK-EXPECT:";
    if (text.compare(0, ok_prefix.size(), ok_prefix) == 0) {
      const std::size_t close = text.rfind(')');
      const std::string reason =
          close == std::string::npos || close < ok_prefix.size()
              ? ""
              : trim(text.substr(ok_prefix.size(),
                                 close - ok_prefix.size()));
      if (reason.empty()) {
        d.empty_ok_lines.insert(c.line);
      } else {
        d.ok_lines.insert(c.line);
        // A multi-line exemption comment covers the line after its end too;
        // approximate by covering the comment's own line and the next one
        // via the caller's (line || line-1) probe.
      }
      continue;
    }
    if (text == loop_marker) {
      d.event_loop_lines.push_back(c.line);
      continue;
    }
    if (text.compare(0, expect_prefix.size(), expect_prefix) == 0) {
      d.expects.push_back(trim(text.substr(expect_prefix.size())));
      continue;
    }
  }
  return d;
}

// An exemption on the flagged line or on one of the two lines above it
// (block comments and long reasons wrap).
bool exempt_at(const Directives& d, int line) {
  return d.ok_lines.count(line) != 0 || d.ok_lines.count(line - 1) != 0 ||
         d.ok_lines.count(line - 2) != 0;
}

// ---------------------------------------------------------------------------
// Program model
// ---------------------------------------------------------------------------

struct CallSite {
  std::string obj;   // single-identifier receiver, "::" for global, "" none
  std::string name;  // callee identifier
  int line = 0;
  std::vector<std::string> held;  // normalized mutexes held at the call
  bool exempt = false;
};

struct WaitSite {
  int line = 0;
  std::vector<std::string> held;
  bool exempt = false;
};

struct BlockSite {
  std::string what;  // "cv-wait" or the blocking callee name
  int line = 0;
  bool exempt = false;
};

struct OrderEdge {
  std::string before;
  std::string after;
  std::string file;
  int line = 0;
};

struct Function {
  std::string cls;   // enclosing class, "" for free functions
  std::string name;
  std::string file;
  int decl_line = 0;   // line of the declarator
  int body_begin = 0;  // token index just inside '{' (0 when no body)
  int body_end = 0;    // token index of '}' (exclusive range end)
  bool has_body = false;
  bool event_loop = false;
  std::vector<CallSite> calls;
  std::vector<WaitSite> waits;
  std::vector<BlockSite> blocks;
  std::set<std::string> direct_acquires;

  std::string qual() const { return cls.empty() ? name : cls + "::" + name; }
};

struct Program {
  std::vector<Function> functions;
  // Class::member (or ::global) -> last type identifier of the declaration.
  std::map<std::string, std::string> member_type;
  std::set<std::string> global_mutexes;
  // Class::method (and bare method) -> REQUIRES expressions (raw text).
  std::map<std::string, std::vector<std::string>> requires_map;
  std::vector<OrderEdge> edges;
  std::vector<Finding> findings;
};

// ---------------------------------------------------------------------------
// Token cursor utilities
// ---------------------------------------------------------------------------

using Toks = std::vector<Token>;

// Given toks[i] == open ("(", "{", "["), return index of matching close.
std::size_t match_balanced(const Toks& t, std::size_t i) {
  const std::string& open = t[i].text;
  const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].text == open) ++depth;
    if (t[k].text == close && --depth == 0) return k;
  }
  return t.size() - 1;
}

// Skip a template argument list starting at '<'; returns index past '>'.
// Handles '>>' closing two levels at once.
std::size_t skip_angles(const Toks& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].text == "<") ++depth;
    if (t[k].text == "<<") depth += 2;
    if (t[k].text == ">") --depth;
    if (t[k].text == ">>") depth -= 2;
    if (depth <= 0) return k + 1;
  }
  return t.size();
}

std::string join_tokens(const Toks& t, std::size_t begin, std::size_t end) {
  std::string out;
  for (std::size_t k = begin; k < end; ++k) {
    if (!out.empty() && is_ident(t[k]) &&
        std::isalnum(static_cast<unsigned char>(out.back()))) {
      out += ' ';
    }
    out += t[k].text;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Mutex-name normalization
// ---------------------------------------------------------------------------

// Turn the tokens of a lock expression into a program-wide identity:
//   mutex_        in a SimService method -> "SimService::mutex_"
//   g_sink_mutex  (file-scope Mutex)     -> "g_sink_mutex"
//   error.mutex   (function-local slot)  -> "parallel_for_index::error.mutex"
//   obj.member    with obj a typed member -> "Type::member"
std::string normalize_mutex(const Program& prog, const Function& fn,
                            const Toks& t, std::size_t begin,
                            std::size_t end) {
  // Strip leading this-> .
  if (begin + 1 < end && is(t[begin], "this") && is(t[begin + 1], "->")) {
    begin += 2;
  }
  if (end - begin == 1 && is_ident(t[begin])) {
    const std::string& id = t[begin].text;
    if (prog.global_mutexes.count(id) != 0) return id;
    if (!fn.cls.empty()) return fn.cls + "::" + id;
    return fn.name + "::" + id;
  }
  if (end - begin == 3 && is_ident(t[begin]) &&
      (is(t[begin + 1], ".") || is(t[begin + 1], "->")) &&
      is_ident(t[begin + 2])) {
    const std::string& obj = t[begin].text;
    const std::string& member = t[begin + 2].text;
    auto it = prog.member_type.find(fn.cls + "::" + obj);
    if (it != prog.member_type.end()) return it->second + "::" + member;
    return fn.qual() + "::" + obj + "." + member;
  }
  return fn.qual() + "::" + join_tokens(t, begin, end);
}

// ---------------------------------------------------------------------------
// Declaration parsing (classes, members, REQUIRES)
// ---------------------------------------------------------------------------

struct Parser {
  const Toks& t;
  const std::string& file;
  Program& prog;
  // Event-loop marker lines not yet attached to a function.
  std::vector<int> pending_loop_markers;

  // Attach any marker that appears before this declarator line.
  bool claim_loop_marker(int decl_line) {
    bool found = false;
    auto& m = pending_loop_markers;
    for (auto it = m.begin(); it != m.end();) {
      if (*it <= decl_line) {
        found = true;
        it = m.erase(it);
      } else {
        ++it;
      }
    }
    return found;
  }

  // Record a REQUIRES(...) list found in a declarator tail.
  void record_requires(const std::string& cls, const std::string& name,
                       std::size_t tail_begin, std::size_t tail_end) {
    for (std::size_t k = tail_begin; k + 1 < tail_end; ++k) {
      if (is_ident(t[k]) && t[k].text == "REQUIRES" && is(t[k + 1], "(")) {
        const std::size_t close = match_balanced(t, k + 1);
        // Split top-level commas.
        std::size_t arg_begin = k + 2;
        int depth = 0;
        for (std::size_t a = k + 2; a <= close; ++a) {
          if (t[a].text == "(" || t[a].text == "[") ++depth;
          if (t[a].text == ")" || t[a].text == "]") --depth;
          const bool at_end = a == close;
          if ((t[a].text == "," && depth == 0) || at_end) {
            if (a > arg_begin) {
              const std::string expr = join_tokens(t, arg_begin, a);
              prog.requires_map[cls.empty() ? name : cls + "::" + name]
                  .push_back(expr);
            }
            arg_begin = a + 1;
          }
        }
        k = close;
      }
    }
  }

  // Parse one class/struct body; `i` is just inside '{'. Returns index of
  // the closing '}'.
  std::size_t parse_class_body(const std::string& cls, std::size_t i);

  // Parse at namespace scope from i to end (exclusive). `end` is t.size()
  // for the file top level or the matching '}' of a namespace.
  void parse_scope(std::size_t i, std::size_t end);

  // Try to parse a function definition/declaration or a variable starting
  // at `i` in namespace scope. Returns index just past the construct.
  std::size_t parse_free_statement(std::size_t i, std::size_t end);
};

// Record a member declaration statement (tokens [begin, end) up to but not
// including the terminating ';').
void record_member(Program& prog, const std::string& cls, const Toks& t,
                   std::size_t begin, std::size_t end) {
  // Member name: last identifier before '=', a brace initializer, an
  // annotation macro (GUARDED_BY etc.), or the end of the statement.
  static const std::set<std::string> annot = {"GUARDED_BY", "PT_GUARDED_BY",
                                              "ACQUIRED_BEFORE",
                                              "ACQUIRED_AFTER"};
  std::size_t stop = end;
  for (std::size_t k = begin; k < end; ++k) {
    if (is_ident(t[k]) && annot.count(t[k].text) != 0) {
      stop = k;
      break;
    }
    if (is(t[k], "=") || is(t[k], "{")) {
      stop = k;
      break;
    }
  }
  std::size_t name_idx = stop;
  while (name_idx > begin) {
    --name_idx;
    if (is_ident(t[name_idx])) break;
  }
  if (name_idx <= begin || !is_ident(t[name_idx])) return;
  const std::string member = t[name_idx].text;
  std::string type;
  for (std::size_t k = begin; k < name_idx; ++k) {
    if (is_ident(t[k])) type = t[k].text;
  }
  if (type.empty() || type == "return" || type == "using") return;
  const std::string key =
      cls.empty() ? "::" + member : cls + "::" + member;
  prog.member_type[key] = type;
  if (cls.empty() && mutex_types().count(type) != 0) {
    prog.global_mutexes.insert(member);
  }
}

std::size_t Parser::parse_class_body(const std::string& cls, std::size_t i) {
  const std::size_t n = t.size();
  while (i < n && !is(t[i], "}")) {
    // Access specifiers.
    if (is_ident(t[i]) &&
        (t[i].text == "public" || t[i].text == "private" ||
         t[i].text == "protected") &&
        i + 1 < n && is(t[i + 1], ":")) {
      i += 2;
      continue;
    }
    if (is(t[i], ";")) {
      ++i;
      continue;
    }
    // Nested class/struct/enum: skip (their members rarely matter; nested
    // POD structs carry no locks in this codebase).
    if (is_ident(t[i]) &&
        (t[i].text == "class" || t[i].text == "struct" ||
         t[i].text == "enum" || t[i].text == "union")) {
      std::size_t k = i + 1;
      while (k < n && !is(t[k], "{") && !is(t[k], ";")) ++k;
      if (k < n && is(t[k], "{")) k = match_balanced(t, k);
      // Skip an optional trailing declarator list (e.g. `} error;`).
      while (k < n && !is(t[k], ";")) ++k;
      i = k + 1;
      continue;
    }
    if (is_ident(t[i]) && t[i].text == "template") {
      std::size_t k = i + 1;
      if (k < n && is(t[k], "<")) k = skip_angles(t, k);
      i = k;
      continue;
    }
    // Scan one member statement: find the first parameter list (an
    // identifier immediately followed by '(' that is not an annotation
    // macro), then decide method vs. data member.
    static const std::set<std::string> annot = {
        "GUARDED_BY",  "PT_GUARDED_BY", "REQUIRES",       "ACQUIRE",
        "RELEASE",     "TRY_ACQUIRE",   "EXCLUDES",       "ACQUIRED_BEFORE",
        "ACQUIRED_AFTER", "RETURN_CAPABILITY", "CAPABILITY",
        "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS"};
    const std::size_t stmt_begin = i;
    std::size_t method_name_idx = 0;
    std::size_t params_close = 0;
    std::size_t k = i;
    while (k < n) {
      if (is(t[k], ";")) break;
      if (is(t[k], "<") && k > stmt_begin && is_ident(t[k - 1])) {
        k = skip_angles(t, k);
        continue;
      }
      if (is(t[k], "(")) {
        const std::size_t close = match_balanced(t, k);
        if (method_name_idx == 0 && k > stmt_begin && is_ident(t[k - 1]) &&
            annot.count(t[k - 1].text) == 0) {
          method_name_idx = k - 1;
          params_close = close;
        }
        k = close + 1;
        continue;
      }
      if (is(t[k], "{")) {
        if (method_name_idx != 0) break;  // inline method body
        k = match_balanced(t, k) + 1;     // brace initializer
        continue;
      }
      ++k;
    }
    if (method_name_idx != 0) {
      std::string name = t[method_name_idx].text;
      if (method_name_idx > stmt_begin &&
          is(t[method_name_idx - 1], "~")) {
        name = "~" + name;
      }
      record_requires(cls, name, params_close + 1,
                      k < n ? k : n);
      Function fn;
      fn.cls = cls;
      fn.name = name;
      fn.file = file;
      fn.decl_line = t[method_name_idx].line;
      fn.event_loop = claim_loop_marker(fn.decl_line);
      if (k < n && is(t[k], "{")) {
        // Inline body; may be preceded by a ctor init list — '{' found by
        // the scanner above is the first top-level brace after the params,
        // which for `Ctor() : a_(x) {` is the body (init-list entries are
        // ident+(...) groups consumed by the paren matcher).
        const std::size_t close = match_balanced(t, k);
        fn.has_body = true;
        fn.body_begin = k + 1;
        fn.body_end = close;
        i = close + 1;
      } else {
        i = k < n ? k + 1 : n;
      }
      prog.functions.push_back(fn);
      continue;
    }
    record_member(prog, cls, t, stmt_begin, k);
    i = k < n ? k + 1 : n;
  }
  return i;
}

std::size_t Parser::parse_free_statement(std::size_t i, std::size_t end) {
  const std::size_t n = end;
  const std::size_t stmt_begin = i;
  std::size_t method_name_idx = 0;
  std::size_t params_close = 0;
  std::size_t k = i;
  while (k < n) {
    if (is(t[k], ";")) break;
    if (is(t[k], "<") && k > stmt_begin && is_ident(t[k - 1])) {
      k = skip_angles(t, k);
      continue;
    }
    if (is(t[k], "(")) {
      const std::size_t close = match_balanced(t, k);
      if (method_name_idx == 0 && k > stmt_begin && is_ident(t[k - 1])) {
        method_name_idx = k - 1;
        params_close = close;
      }
      k = close + 1;
      continue;
    }
    if (is(t[k], "{")) {
      if (method_name_idx != 0) break;  // function body (or init list: the
                                        // paren matcher already consumed
                                        // `member(init)` groups)
      k = match_balanced(t, k) + 1;
      continue;
    }
    ++k;
  }
  if (method_name_idx == 0) {
    // Plain variable/using declaration at namespace scope.
    record_member(prog, "", t, stmt_begin, k);
    return k < n ? k + 1 : n;
  }
  // Declarator name: `Class :: name` or `Class :: ~ name` or bare `name`.
  std::string cls;
  std::string name = t[method_name_idx].text;
  std::size_t p = method_name_idx;
  if (p > stmt_begin && is(t[p - 1], "~")) {
    name = "~" + name;
    --p;
  }
  if (p >= stmt_begin + 2 && is(t[p - 1], "::") && is_ident(t[p - 2])) {
    cls = t[p - 2].text;
  }
  record_requires(cls, name, params_close + 1, k);
  Function fn;
  fn.cls = cls;
  fn.name = name;
  fn.file = file;
  fn.decl_line = t[method_name_idx].line;
  fn.event_loop = claim_loop_marker(fn.decl_line);
  if (k < n && is(t[k], "{")) {
    const std::size_t close = match_balanced(t, k);
    fn.has_body = true;
    fn.body_begin = k + 1;
    fn.body_end = close;
    prog.functions.push_back(fn);
    return close + 1;
  }
  prog.functions.push_back(fn);
  return k < n ? k + 1 : n;
}

void Parser::parse_scope(std::size_t i, std::size_t end) {
  while (i < end) {
    if (is(t[i], ";") || is(t[i], "}")) {
      ++i;
      continue;
    }
    if (is_ident(t[i]) && t[i].text == "namespace") {
      std::size_t k = i + 1;
      while (k < end && !is(t[k], "{") && !is(t[k], ";")) ++k;
      if (k < end && is(t[k], "{")) {
        const std::size_t close = match_balanced(t, k);
        parse_scope(k + 1, close);
        i = close + 1;
      } else {
        i = k + 1;
      }
      continue;
    }
    if (is_ident(t[i]) && t[i].text == "template") {
      std::size_t k = i + 1;
      if (k < end && is(t[k], "<")) k = skip_angles(t, k);
      i = k;
      continue;
    }
    if (is_ident(t[i]) &&
        (t[i].text == "class" || t[i].text == "struct")) {
      // Distinguish definition from forward declaration / elaborated type.
      // Attribute-like annotations (CAPABILITY("mutex"), alignas(...)) may
      // sit between the keyword and the class name.
      std::size_t k = i + 1;
      std::string cls;
      while (k < end && !is(t[k], "{") && !is(t[k], ";")) {
        if (is_ident(t[k])) {
          const std::string& w = t[k].text;
          if (w == "CAPABILITY" || w == "SCOPED_CAPABILITY" ||
              w == "alignas") {
            if (k + 1 < end && is(t[k + 1], "(")) {
              k = match_balanced(t, k + 1) + 1;
              continue;
            }
            ++k;
            continue;
          }
          if (w == "final") {
            ++k;
            continue;
          }
          if (cls.empty()) cls = w;
          ++k;
          continue;
        }
        if (is(t[k], ":")) {  // base clause: skip to '{'
          while (k < end && !is(t[k], "{")) ++k;
          break;
        }
        if (is(t[k], "(")) {
          k = match_balanced(t, k) + 1;
          continue;
        }
        ++k;
      }
      if (k < end && is(t[k], "{")) {
        const std::size_t close = parse_class_body(cls, k + 1);
        // Skip optional trailing declarator + ';'.
        std::size_t z = close + 1;
        while (z < end && !is(t[z], ";")) ++z;
        i = z + 1;
        continue;
      }
      i = k + 1;
      continue;
    }
    if (is_ident(t[i]) &&
        (t[i].text == "using" || t[i].text == "typedef" ||
         t[i].text == "extern" || t[i].text == "enum")) {
      std::size_t k = i;
      while (k < end && !is(t[k], ";")) {
        if (is(t[k], "{")) k = match_balanced(t, k);
        ++k;
      }
      i = k + 1;
      continue;
    }
    i = parse_free_statement(i, end);
  }
}

// ---------------------------------------------------------------------------
// Body analysis: lock tracking, call/wait/block sites
// ---------------------------------------------------------------------------

struct HeldLock {
  std::vector<std::string> mutexes;
  std::string var;    // guard variable name ("" for REQUIRES seeds)
  int depth = 0;      // brace depth at declaration; released when left
  bool active = true; // false between unlock() and lock()
  bool relockable = false;
};

struct BodyContext {
  Program& prog;
  Function& fn;
  const Toks& t;
  const Directives& dir;
  std::vector<HeldLock> held;

  std::vector<std::string> active_mutexes() const {
    std::vector<std::string> out;
    for (const HeldLock& h : held) {
      if (!h.active) continue;
      out.insert(out.end(), h.mutexes.begin(), h.mutexes.end());
    }
    return out;
  }

  bool is_lock_var(const std::string& name) const {
    for (const HeldLock& h : held) {
      if (!h.var.empty() && h.var == name) return true;
    }
    return false;
  }

  void record_acquire(const std::vector<std::string>& mutexes, int line) {
    for (const std::string& before : active_mutexes()) {
      for (const std::string& after : mutexes) {
        if (before != after) {
          prog.edges.push_back({before, after, fn.file, line});
        }
      }
    }
    for (const std::string& m : mutexes) fn.direct_acquires.insert(m);
  }
};

// Try to match a guard declaration at i:
//   [std:: | util::] GuardType [<...>] var ( arg [, arg...] )
// Returns index past ')' on success, 0 on no-match.
std::size_t match_guard_decl(BodyContext& ctx, std::size_t i) {
  const Toks& t = ctx.t;
  std::size_t k = i;
  if ((is(t[k], "std") || is(t[k], "util")) && k + 1 < t.size() &&
      is(t[k + 1], "::")) {
    k += 2;
  }
  if (k >= t.size() || !is_ident(t[k]) ||
      guard_types().count(t[k].text) == 0) {
    return 0;
  }
  const std::string guard = t[k].text;
  ++k;
  if (k < t.size() && is(t[k], "<")) k = skip_angles(t, k);
  if (k + 1 >= t.size() || !is_ident(t[k]) || !is(t[k + 1], "(")) return 0;
  const std::string var = t[k].text;
  const std::size_t open = k + 1;
  const std::size_t close = match_balanced(t, open);
  // Split args on top-level commas.
  std::vector<std::pair<std::size_t, std::size_t>> args;
  std::size_t arg_begin = open + 1;
  int depth = 0;
  for (std::size_t a = open + 1; a <= close; ++a) {
    if (t[a].text == "(" || t[a].text == "[" || t[a].text == "{") ++depth;
    if (t[a].text == ")" || t[a].text == "]" || t[a].text == "}") --depth;
    if ((t[a].text == "," && depth == 0) || a == close) {
      if (a > arg_begin) args.emplace_back(arg_begin, a);
      arg_begin = a + 1;
    }
  }
  if (args.empty()) return 0;
  // unique_lock with defer/adopt tags: only the first arg is the mutex;
  // a deferred lock is not held — skip it entirely (not used in-tree).
  std::vector<std::string> mutexes;
  const std::size_t take = guard == "scoped_lock" ? args.size() : 1;
  for (std::size_t a = 0; a < take && a < args.size(); ++a) {
    mutexes.push_back(normalize_mutex(ctx.prog, ctx.fn, t, args[a].first,
                                      args[a].second));
  }
  ctx.record_acquire(mutexes, t[i].line);
  HeldLock h;
  h.mutexes = mutexes;
  h.var = var;
  h.relockable = relockable_guard(guard);
  ctx.held.push_back(h);  // depth filled by caller
  return close + 1;
}

void analyze_body(Program& prog, Function& fn, const Toks& t,
                  const Directives& dir) {
  BodyContext ctx{prog, fn, t, dir, {}};

  // Seed the held set from REQUIRES annotations (header declaration).
  auto seed = [&](const std::string& key) {
    auto it = prog.requires_map.find(key);
    if (it == prog.requires_map.end()) return;
    for (const std::string& expr : it->second) {
      // Re-lex the expression cheaply: single identifiers dominate.
      TokenStream ts = lex(expr);
      HeldLock h;
      h.mutexes.push_back(normalize_mutex(prog, fn, ts.tokens, 0,
                                          ts.tokens.size()));
      h.depth = -1;  // never released
      ctx.held.push_back(h);
      for (const std::string& m : h.mutexes) fn.direct_acquires.erase(m);
    }
  };
  seed(fn.qual());

  int depth = 0;
  std::size_t i = fn.body_begin;
  while (i < static_cast<std::size_t>(fn.body_end)) {
    const Token& tok = t[i];
    if (is(tok, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is(tok, "}")) {
      --depth;
      ctx.held.erase(
          std::remove_if(ctx.held.begin(), ctx.held.end(),
                         [&](const HeldLock& h) { return h.depth > depth; }),
          ctx.held.end());
      ++i;
      continue;
    }
    if (!is_ident(tok)) {
      ++i;
      continue;
    }

    // Guard declaration?
    if (guard_types().count(tok.text) != 0 ||
        ((tok.text == "std" || tok.text == "util") &&
         i + 2 < t.size() && is(t[i + 1], "::") &&
         guard_types().count(t[i + 2].text) != 0)) {
      const std::size_t before = ctx.held.size();
      const std::size_t next = match_guard_decl(ctx, i);
      if (next != 0) {
        if (ctx.held.size() > before) ctx.held.back().depth = depth;
        i = next;
        continue;
      }
    }

    // lock()/unlock() on a guard variable?
    if (ctx.is_lock_var(tok.text) && i + 3 < t.size() &&
        is(t[i + 1], ".") &&
        (is(t[i + 2], "lock") || is(t[i + 2], "unlock")) &&
        is(t[i + 3], "(")) {
      const bool locking = is(t[i + 2], "lock");
      for (HeldLock& h : ctx.held) {
        if (h.var == tok.text && h.relockable) {
          if (locking && !h.active) {
            h.active = true;
            ctx.record_acquire(h.mutexes, tok.line);
            // record_acquire re-inserts into direct_acquires; fine.
          } else if (!locking) {
            h.active = false;
          }
        }
      }
      i = match_balanced(t, i + 3) + 1;
      continue;
    }

    // Condition-variable wait?
    if (i + 3 < t.size() && (is(t[i + 1], ".") || is(t[i + 1], "->")) &&
        is_ident(t[i + 2]) && wait_names().count(t[i + 2].text) != 0 &&
        is(t[i + 3], "(")) {
      const std::string obj = tok.text;
      auto mt = prog.member_type.find(fn.cls + "::" + obj);
      const bool obj_is_cv =
          mt != prog.member_type.end() &&
          cv_member_types().count(mt->second) != 0;
      const bool arg_is_lock =
          i + 4 < t.size() && is_ident(t[i + 4]) &&
          ctx.is_lock_var(t[i + 4].text);
      if (obj_is_cv || arg_is_lock) {
        const bool ex = exempt_at(dir, tok.line);
        fn.waits.push_back({tok.line, ctx.active_mutexes(), ex});
        fn.blocks.push_back({"cv-wait", tok.line, ex});
        i = match_balanced(t, i + 3) + 1;
        continue;
      }
    }

    // Generic call site.
    if (i + 1 < t.size() && is(t[i + 1], "(") &&
        keywords().count(tok.text) == 0) {
      std::string obj;
      if (i >= 1 && is(t[i - 1], "::")) {
        if (i < 2 || !is_ident(t[i - 2])) {
          obj = "::";
        } else {
          obj = "";  // namespace-qualified; treat as free call
        }
      } else if (i >= 2 && (is(t[i - 1], ".") || is(t[i - 1], "->"))) {
        obj = is_ident(t[i - 2]) ? t[i - 2].text : "?";
      }
      CallSite call;
      call.obj = obj;
      call.name = tok.text;
      call.line = tok.line;
      call.held = ctx.active_mutexes();
      call.exempt = exempt_at(dir, tok.line);
      fn.calls.push_back(call);
      if (blocking_names().count(call.name) != 0 ||
          (obj == "::" && blocking_global_names().count(call.name) != 0)) {
        fn.blocks.push_back({call.name, tok.line, call.exempt});
      }
      ++i;  // do NOT skip args: nested calls must be seen
      continue;
    }
    ++i;
  }
}

// ---------------------------------------------------------------------------
// fd hygiene (per function, token-linear with an invalid-region heuristic)
// ---------------------------------------------------------------------------

void check_fds(Program& prog, const Function& fn, const Toks& t,
               const Directives& dir) {
  struct TrackedFd {
    std::string var;
    std::size_t created_at;
    int line;
    bool closed = false;
    bool escaped = false;
  };
  std::vector<TrackedFd> fds;

  const std::size_t begin = fn.body_begin;
  const std::size_t end = fn.body_end;

  // Pass 1: creations + CLOEXEC.
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!is_ident(t[i]) || !is(t[i + 1], "(")) continue;
    auto it = fd_creators().find(t[i].text);
    if (it == fd_creators().end()) continue;
    // A member call (`stream.open(...)`) is not the syscall.
    if (i > begin && (is(t[i - 1], ".") || is(t[i - 1], "->"))) continue;
    const std::size_t close = match_balanced(t, i + 1);
    const std::string& flag = it->second;
    if (flag.empty()) {
      if (!exempt_at(dir, t[i].line)) {
        prog.findings.push_back(
            {"fd-cloexec", fn.file, t[i].line,
             t[i].text + "() has no CLOEXEC-capable form; use the *4/*2 "
             "variant (or fcntl FD_CLOEXEC immediately) so the descriptor "
             "cannot leak across exec"});
      }
    } else {
      bool has_flag = false;
      for (std::size_t a = i + 2; a < close; ++a) {
        if (is_ident(t[a]) &&
            t[a].text.find("CLOEXEC") != std::string::npos) {
          has_flag = true;
          break;
        }
      }
      if (!has_flag && !exempt_at(dir, t[i].line)) {
        prog.findings.push_back(
            {"fd-cloexec", fn.file, t[i].line,
             t[i].text + "() without " + flag +
                 ": the descriptor leaks into every child process"});
      }
    }
    // Assignment target: [const] int VAR = [::] creator(...)
    std::size_t j = i;
    if (j > begin && is(t[j - 1], "::")) --j;
    if (j > begin + 1 && is(t[j - 1], "=") && is_ident(t[j - 2])) {
      const std::string var = t[j - 2].text;
      const bool local_decl = j > begin + 2 && is(t[j - 3], "int");
      if (local_decl) {
        fds.push_back({var, close + 1, t[i].line, false, false});
      }
    }
  }

  if (fds.empty()) return;

  // Invalid regions: `if (VAR < 0)` / `if (VAR == -1)` guard bodies, where
  // the descriptor does not exist and an early return is not a leak.
  auto invalid_regions = [&](const std::string& var) {
    std::vector<std::pair<std::size_t, std::size_t>> regions;
    for (std::size_t i = begin; i + 5 < end; ++i) {
      if (!is(t[i], "if") || !is(t[i + 1], "(")) continue;
      const std::size_t close = match_balanced(t, i + 1);
      bool matches = false;
      for (std::size_t a = i + 2; a + 1 < close; ++a) {
        if (is_ident(t[a]) && t[a].text == var &&
            (a == i + 2 || (!is(t[a - 1], ".") && !is(t[a - 1], "->")))) {
          if (is(t[a + 1], "<") && a + 2 < close && t[a + 2].text == "0") {
            matches = true;
          }
          if (is(t[a + 1], "==") && a + 3 < close && is(t[a + 2], "-") &&
              t[a + 3].text == "1") {
            matches = true;
          }
        }
      }
      if (!matches) continue;
      std::size_t body = close + 1;
      if (body < end && is(t[body], "{")) {
        regions.emplace_back(body, match_balanced(t, body));
      } else {
        std::size_t z = body;
        while (z < end && !is(t[z], ";")) ++z;
        regions.emplace_back(body, z);
      }
    }
    return regions;
  };

  for (TrackedFd& fd : fds) {
    const auto regions = invalid_regions(fd.var);
    auto in_invalid = [&](std::size_t pos) {
      for (const auto& r : regions) {
        if (pos >= r.first && pos <= r.second) return true;
      }
      return false;
    };
    // Walk forward from creation, maintaining the enclosing-call stack.
    std::vector<std::string> call_stack;
    for (std::size_t i = fd.created_at; i < end; ++i) {
      if (is(t[i], "(")) {
        const bool named_call = i > 0 && is_ident(t[i - 1]) &&
                                keywords().count(t[i - 1].text) == 0;
        call_stack.push_back(named_call ? t[i - 1].text : "");
        continue;
      }
      if (is(t[i], ")")) {
        if (!call_stack.empty()) call_stack.pop_back();
        continue;
      }
      if (is(t[i], "return") && !fd.closed && !fd.escaped &&
          !in_invalid(i) && !exempt_at(dir, t[i].line)) {
        prog.findings.push_back(
            {"fd-leak", fn.file, t[i].line,
             "return with fd '" + fd.var + "' (created at line " +
                 std::to_string(fd.line) +
                 ") still open — close it or hand it off on this path"});
        continue;
      }
      if (!is_ident(t[i]) || t[i].text != fd.var) continue;
      if (i > 0 && (is(t[i - 1], ".") || is(t[i - 1], "->"))) continue;
      const std::string encl = call_stack.empty() ? "" : call_stack.back();
      if (encl == "close") {
        fd.closed = true;
      } else if (!encl.empty() && fd_non_owning().count(encl) == 0 &&
                 fd_creators().count(encl) == 0) {
        fd.escaped = true;  // stored/registered/transferred somewhere
      } else if (encl.empty() && i > 0 &&
                 (is(t[i - 1], "=") || is(t[i - 1], "return"))) {
        fd.escaped = true;  // assigned out or returned
      }
    }
    if (!fd.closed && !fd.escaped && !exempt_at(dir, fd.line)) {
      prog.findings.push_back(
          {"fd-leak", fn.file, fd.line,
           "fd '" + fd.var + "' is neither closed nor handed off on any "
           "path out of " + fn.qual() + "()"});
    }
  }
}

// ---------------------------------------------------------------------------
// Interprocedural passes
// ---------------------------------------------------------------------------

struct CallGraph {
  // For each function index, resolved callee indices per call site.
  std::vector<std::vector<std::vector<std::size_t>>> resolved;
};

CallGraph resolve_calls(const Program& prog) {
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::map<std::string, std::size_t> by_qual;
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    const Function& fn = prog.functions[f];
    if (!fn.has_body) continue;
    by_name[fn.name].push_back(f);
    by_qual[fn.qual()] = f;
  }
  CallGraph g;
  g.resolved.resize(prog.functions.size());
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    const Function& fn = prog.functions[f];
    g.resolved[f].resize(fn.calls.size());
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const CallSite& call = fn.calls[c];
      auto named = by_name.find(call.name);
      if (named == by_name.end()) continue;  // library call
      std::vector<std::size_t>& out = g.resolved[f][c];
      // Receiver with a known member type: restrict to that class when it
      // defines the method; otherwise assume virtual dispatch and fall
      // back to every definition of the name.
      if (!call.obj.empty() && call.obj != "::" && call.obj != "?") {
        auto mt = prog.member_type.find(fn.cls + "::" + call.obj);
        if (mt != prog.member_type.end()) {
          auto exact = by_qual.find(mt->second + "::" + call.name);
          if (exact != by_qual.end()) {
            out.push_back(exact->second);
            continue;
          }
        }
        out = named->second;
        continue;
      }
      if (call.obj.empty()) {
        // Unqualified: same class wins when defined there.
        auto exact = by_qual.find(
            fn.cls.empty() ? call.name : fn.cls + "::" + call.name);
        if (exact != by_qual.end()) {
          out.push_back(exact->second);
          continue;
        }
        out = named->second;
        continue;
      }
      // Global-qualified `::name(` — a syscall, never a program function.
    }
  }
  return g;
}

// Fixpoint: transitive lock-acquisition summaries.
std::vector<std::set<std::string>> acquire_summaries(const Program& prog,
                                                     const CallGraph& g) {
  std::vector<std::set<std::string>> summary(prog.functions.size());
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    summary[f] = prog.functions[f].direct_acquires;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
      for (std::size_t c = 0; c < prog.functions[f].calls.size(); ++c) {
        for (std::size_t callee : g.resolved[f][c]) {
          for (const std::string& m : summary[callee]) {
            if (summary[f].insert(m).second) changed = true;
          }
        }
      }
    }
  }
  return summary;
}

void add_call_edges(Program& prog, const CallGraph& g,
                    const std::vector<std::set<std::string>>& summary) {
  for (std::size_t f = 0; f < prog.functions.size(); ++f) {
    const Function& fn = prog.functions[f];
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const CallSite& call = fn.calls[c];
      if (call.held.empty()) continue;
      for (std::size_t callee : g.resolved[f][c]) {
        for (const std::string& before : call.held) {
          for (const std::string& after : summary[callee]) {
            if (before != after) {
              prog.edges.push_back({before, after, fn.file, call.line});
            }
          }
        }
      }
    }
  }
}

// Tarjan SCC over the mutex-order graph; every non-trivial SCC is a cycle.
void report_cycles(Program& prog) {
  std::map<std::string, std::vector<std::size_t>> adj_edges;  // by node
  std::set<std::string> nodes;
  for (std::size_t e = 0; e < prog.edges.size(); ++e) {
    nodes.insert(prog.edges[e].before);
    nodes.insert(prog.edges[e].after);
    adj_edges[prog.edges[e].before].push_back(e);
  }
  std::map<std::string, int> index, low;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;
  std::vector<std::vector<std::string>> sccs;

  // Iterative Tarjan.
  struct Frame {
    std::string node;
    std::size_t edge_pos = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto& outs = adj_edges[fr.node];
      if (fr.edge_pos < outs.size()) {
        const std::string& next = prog.edges[outs[fr.edge_pos]].after;
        ++fr.edge_pos;
        if (index.count(next) == 0) {
          index[next] = low[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = true;
          frames.push_back({next, 0});
        } else if (on_stack[next]) {
          low[fr.node] = std::min(low[fr.node], index[next]);
        }
        continue;
      }
      if (low[fr.node] == index[fr.node]) {
        std::vector<std::string> scc;
        while (true) {
          const std::string n = stack.back();
          stack.pop_back();
          on_stack[n] = false;
          scc.push_back(n);
          if (n == fr.node) break;
        }
        if (scc.size() > 1) sccs.push_back(scc);
      }
      const std::string done = fr.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] =
            std::min(low[frames.back().node], low[done]);
      }
    }
  }
  // Self-loops (A -> A) cannot happen: record_acquire skips them.
  for (const auto& scc : sccs) {
    std::set<std::string> members(scc.begin(), scc.end());
    std::ostringstream msg;
    msg << "lock-order cycle between { ";
    for (std::size_t k = 0; k < scc.size(); ++k) {
      msg << (k ? ", " : "") << scc[k];
    }
    msg << " }; conflicting acquisition sites:";
    std::string file;
    int line = 0;
    int shown = 0;
    for (const OrderEdge& e : prog.edges) {
      if (members.count(e.before) == 0 || members.count(e.after) == 0) {
        continue;
      }
      if (file.empty()) {
        file = e.file;
        line = e.line;
      }
      if (shown++ < 6) {
        msg << " [" << e.before << " -> " << e.after << " at " << e.file
            << ":" << e.line << "]";
      }
    }
    prog.findings.push_back({"lock-order-cycle", file, line, msg.str()});
  }
}

void report_waits(Program& prog) {
  for (const Function& fn : prog.functions) {
    for (const WaitSite& w : fn.waits) {
      if (w.exempt) continue;
      std::set<std::string> held(w.held.begin(), w.held.end());
      if (held.size() < 2) continue;
      std::ostringstream msg;
      msg << "condition_variable wait in " << fn.qual()
          << "() while holding " << held.size() << " locks (";
      bool first = true;
      for (const std::string& m : held) {
        msg << (first ? "" : ", ") << m;
        first = false;
      }
      msg << "); the wait releases only its own lock — every other one "
             "stays held for the full sleep";
      prog.findings.push_back({"wait-holding-two", fn.file, w.line,
                               msg.str()});
    }
  }
}

void report_event_loop_blocking(Program& prog, const CallGraph& g) {
  // BFS from each marked root over non-exempt call edges.
  for (std::size_t root = 0; root < prog.functions.size(); ++root) {
    if (!prog.functions[root].event_loop ||
        !prog.functions[root].has_body) {
      continue;
    }
    std::map<std::size_t, std::size_t> parent;  // callee -> caller
    std::vector<std::size_t> queue{root};
    std::set<std::size_t> seen{root};
    while (!queue.empty()) {
      const std::size_t f = queue.front();
      queue.erase(queue.begin());
      const Function& fn = prog.functions[f];
      for (const BlockSite& b : fn.blocks) {
        if (b.exempt) continue;
        std::ostringstream msg;
        msg << "blocking call (" << b.what << ") reachable from event loop "
            << prog.functions[root].qual() << "(): path ";
        std::vector<std::size_t> path{f};
        while (path.back() != root) path.push_back(parent[path.back()]);
        for (std::size_t k = path.size(); k-- > 0;) {
          msg << prog.functions[path[k]].qual()
              << (k ? " -> " : "");
        }
        msg << " — one stalled request freezes every connection";
        prog.findings.push_back({"blocking-in-loop", fn.file, b.line,
                                 msg.str()});
      }
      for (std::size_t c = 0; c < fn.calls.size(); ++c) {
        if (fn.calls[c].exempt) continue;
        for (std::size_t callee : g.resolved[f][c]) {
          if (!prog.functions[callee].has_body) continue;
          if (seen.insert(callee).second) {
            parent[callee] = f;
            queue.push_back(callee);
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::vector<Finding> analyze(const std::vector<FileInput>& inputs) {
  Program prog;
  struct LexedFile {
    std::string path;
    TokenStream ts;
    Directives dir;
  };
  std::vector<LexedFile> files;
  files.reserve(inputs.size());
  for (const FileInput& in : inputs) {
    LexedFile lf;
    lf.path = in.path;
    lf.ts = lex(in.source);
    lf.dir = parse_directives(lf.ts.comments);
    files.push_back(std::move(lf));
  }
  // Pass 1: declarations first (headers before sources does not matter —
  // the whole set is parsed before any body is analyzed).
  std::vector<std::pair<std::size_t, std::size_t>> func_file;  // fn -> file
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    LexedFile& lf = files[fi];
    Parser p{lf.ts.tokens, lf.path, prog,
             std::vector<int>(lf.dir.event_loop_lines.begin(),
                              lf.dir.event_loop_lines.end())};
    const std::size_t before = prog.functions.size();
    p.parse_scope(0, lf.ts.tokens.size());
    for (std::size_t f = before; f < prog.functions.size(); ++f) {
      func_file.emplace_back(f, fi);
    }
    for (int line : lf.dir.empty_ok_lines) {
      prog.findings.push_back(
          {"empty-exemption", lf.path, line,
           "LOCKCHECK: ok() needs a reason — say why this site is safe"});
    }
  }
  // Pass 2: bodies.
  for (const auto& [f, fi] : func_file) {
    Function& fn = prog.functions[f];
    if (!fn.has_body) continue;
    analyze_body(prog, fn, files[fi].ts.tokens, files[fi].dir);
    check_fds(prog, fn, files[fi].ts.tokens, files[fi].dir);
  }
  // Pass 3: interprocedural.
  const CallGraph g = resolve_calls(prog);
  const auto summary = acquire_summaries(prog, g);
  add_call_edges(prog, g, summary);
  report_cycles(prog);
  report_waits(prog);
  report_event_loop_blocking(prog, g);

  std::sort(prog.findings.begin(), prog.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  prog.findings.erase(
      std::unique(prog.findings.begin(), prog.findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.file == b.file && a.line == b.line &&
                           a.rule == b.rule && a.message == b.message;
                  }),
      prog.findings.end());
  return prog.findings;
}

std::vector<std::string> self_test(const std::vector<FileInput>& fixtures) {
  std::vector<std::string> failures;
  for (const FileInput& fx : fixtures) {
    const TokenStream ts = lex(fx.source);
    const Directives dir = parse_directives(ts.comments);
    std::vector<std::string> expected = dir.expects;
    std::sort(expected.begin(), expected.end());

    std::vector<Finding> found = analyze({fx});
    std::vector<std::string> got;
    got.reserve(found.size());
    for (const Finding& f : found) got.push_back(f.rule);
    std::sort(got.begin(), got.end());

    if (expected != got) {
      std::ostringstream msg;
      msg << fx.path << ": expected {";
      for (std::size_t k = 0; k < expected.size(); ++k) {
        msg << (k ? ", " : "") << expected[k];
      }
      msg << "} but found {";
      for (std::size_t k = 0; k < got.size(); ++k) {
        msg << (k ? ", " : "") << got[k];
      }
      msg << "}";
      for (const Finding& f : found) {
        msg << "\n    " << f.file << ":" << f.line << ": [" << f.rule
            << "] " << f.message;
      }
      failures.push_back(msg.str());
    }
  }
  return failures;
}

}  // namespace lockcheck
