// Token-level C++ lexer for the lockcheck static analyzer.
//
// lockcheck deliberately does NOT parse C++ — it lexes it. A real frontend
// (libclang) would be more precise but is a heavyweight dependency this
// container does not carry; the concurrency idioms this repo allows are
// narrow enough (named lock-guard declarations, `Class::method` definitions,
// `*_locked()` helpers with REQUIRES annotations) that a token stream plus
// a few heuristics recovers everything the checks need. The lexer keeps
// comments in a side table so `// LOCKCHECK:` directives can be matched to
// the source lines they annotate.
#pragma once

#include <string>
#include <vector>

namespace lockcheck {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. suffixes)
  kString,  // "..." and raw strings
  kChar,    // '...'
  kPunct,   // every operator / punctuator, one lexeme per token
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

/// A comment with its location; `text` excludes the // or /* */ markers.
struct Comment {
  std::string text;
  int line;       // line the comment starts on
  bool trailing;  // true when code precedes it on the same line
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lex `source`. Never fails: unrecognized bytes become single-char punct
/// tokens, an unterminated literal runs to end of line. Preprocessor
/// directives are dropped (lockcheck analyzes one configuration, the one
/// in the tree).
TokenStream lex(const std::string& source);

}  // namespace lockcheck
