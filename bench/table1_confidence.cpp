// Table I with confidence intervals: the paper reports single hardware
// runs; the simulator can replay each app across seeds (different workload
// jitter and sensor noise) and attach a sample standard deviation and a
// 95% confidence half-width to every cell. A shape claim whose intervals
// do not overlap across the seed spread is a robust one.
#include <cstdio>

#include "bench_util.h"
#include "sim/experiment.h"
#include "sim/montecarlo.h"
#include "workload/presets.h"

int main() {
  using namespace mobitherm;
  bench::header("Table I (confidence)",
                "median fps across 5 seeds, mean +- stddev [ci95]");

  constexpr int kSeeds = 5;
  constexpr double kConfidence = 0.95;
  // 0 = one worker per hardware thread; each seed is an isolated engine,
  // and the statistics are bit-identical to the serial evaluation.
  constexpr unsigned kThreads = 0;
  std::printf("\n%-15s | %-28s | %-28s | %s\n", "App",
              "fps w/o throttling", "fps w/ throttling", "drop (mean)");
  for (const workload::AppSpec& app : workload::nexus_apps()) {
    auto metric = [&](bool throttling) {
      return sim::across_seeds(
          [&](std::uint64_t seed) {
            sim::NexusRun run;
            run.app = app;
            run.throttling = throttling;
            run.seed = seed;
            return sim::run_nexus_app(run).median_fps;
          },
          kSeeds, /*base_seed=*/1, kThreads);
    };
    const sim::SeedStats off = metric(false);
    const sim::SeedStats on = metric(true);
    const double off_ci = sim::ci_half_width(off.stddev, kSeeds, kConfidence);
    const double on_ci = sim::ci_half_width(on.stddev, kSeeds, kConfidence);
    std::printf(
        "%-15s | %8.1f +- %-5.2f [%5.2f] | %8.1f +- %-5.2f [%5.2f] | %5.1f%%\n",
        app.name.c_str(), off.mean, off.stddev, off_ci, on.mean, on.stddev,
        on_ci, 100.0 * (1.0 - on.mean / off.mean));
  }
  return 0;
}
