// Table I: median frame rate of the five popular Android apps with and
// without thermal throttling on the Nexus 6P model.
//
// Paper values (fps without / with / % reduction):
//   Paper.io        35 / 23 / 34%
//   Stickman Hook   59 / 40 / 32%
//   Amazon          35 / 28 / 20%
//   Google Hangouts 42 / 38 / 10%
//   Facebook        35 / 24 / 31%
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "nexus_figure.h"
#include "workload/presets.h"

namespace {

struct PaperRow {
  double without_fps;
  double with_fps;
};

}  // namespace

int main() {
  using namespace mobitherm;
  bench::header("Table I",
                "median frame rate with/without throttling, five apps");

  const std::vector<std::string>& apps = service::nexus_app_names();
  const std::vector<PaperRow> paper = {
      {35.0, 23.0}, {59.0, 40.0}, {35.0, 28.0}, {42.0, 38.0}, {35.0, 24.0}};

  std::printf("\n%-15s | %21s | %21s | %19s\n", "App",
              "fps w/o throttling", "fps w/ throttling", "reduction");
  std::printf("%-15s | %10s %10s | %10s %10s | %9s %9s\n", "", "paper",
              "measured", "paper", "measured", "paper", "measured");
  std::printf("----------------+-----------------------+------------------"
              "-----+--------------------\n");
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const bench::NexusPair pair = bench::run_pair(apps[i]);
    const double off = pair.without_throttling.median_fps;
    const double on = pair.with_throttling.median_fps;
    const double paper_red =
        100.0 * (1.0 - paper[i].with_fps / paper[i].without_fps);
    const double meas_red = 100.0 * (1.0 - on / off);
    const std::string display = service::workload_by_name(apps[i]).name;
    std::printf("%-15s | %10.0f %10.1f | %10.0f %10.1f | %8.0f%% %8.1f%%\n",
                display.c_str(), paper[i].without_fps, off,
                paper[i].with_fps, on, paper_red, meas_red);
  }
  std::printf("\nShape check: games lose ~1/3 of their frame rate, the\n"
              "CPU-bound shopping app ~15-20%%, the video call ~10%%.\n");
  return 0;
}
