// Microbenchmarks for the fault-injection layer, plus the cost invariant
// the issue tracker pins: a *disabled* FaultPlan probe must be a single
// branch — no locks, no journal traffic and, above all, zero heap
// allocations. The invariant is asserted in main() before the benchmarks
// run, so an accidentally heavyweight probe fails the bench-smoke job
// loudly instead of just shifting numbers.
#define MOBITHERM_BENCH_COUNT_ALLOCS
#include "bench_util.h"

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "service/result_cache.h"
#include "service/server.h"
#include "service/service.h"
#include "util/fault.h"

namespace {

using namespace mobitherm;
using util::FaultPlan;
using util::FaultPlanConfig;
using util::FaultSite;

FaultPlan armed_plan(std::uint64_t seed) {
  FaultPlanConfig config;
  config.seed = seed;
  for (int i = 0; i < util::kNumFaultSites; ++i) {
    config.probability[i] = 0.5;
  }
  return FaultPlan(config);
}

std::shared_ptr<service::JobResult> canned_result(std::size_t bytes) {
  auto result = std::make_shared<service::JobResult>();
  result->payload.assign(bytes, 'x');
  return result;
}

void BM_DisabledProbe(benchmark::State& state) {
  FaultPlan plan;  // default: disabled
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan.fires(FaultSite::kWorkerCrashBeforeSlice, key++));
  }
}
BENCHMARK(BM_DisabledProbe);

void BM_ArmedDecision(benchmark::State& state) {
  const FaultPlan plan = armed_plan(7);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan.should_inject(FaultSite::kWorkerCrashBeforeSlice, key++));
  }
}
BENCHMARK(BM_ArmedDecision);

void BM_ArmedProbeWithJournal(benchmark::State& state) {
  FaultPlan plan = armed_plan(7);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        plan.fires(FaultSite::kWorkerCrashBeforeSlice, key++));
  }
}
BENCHMARK(BM_ArmedProbeWithJournal);

/// Checksummed insert + lookup round trip (the cost the checksum adds to
/// every cache transaction, without injection).
void BM_CacheChecksumRoundTrip(benchmark::State& state) {
  service::ResultCache cache(/*capacity=*/64);
  const auto result = canned_result(16 * 1024);
  std::uint64_t key = 0;
  for (auto _ : state) {
    cache.insert(key, "canonical", result);
    benchmark::DoNotOptimize(cache.lookup(key, "canonical"));
    ++key;
  }
}
BENCHMARK(BM_CacheChecksumRoundTrip)->Unit(benchmark::kMicrosecond);

/// The server's structured-error path (parse failure -> error object).
void BM_ServerErrorPath(benchmark::State& state) {
  service::SimService service(service::ScenarioRegistry::standard(), {});
  service::SimServer server(service);
  const std::string line = "{\"op\":\"warp\"}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(line));
  }
}
BENCHMARK(BM_ServerErrorPath);

/// The pinned invariant: with a disabled plan, a probe on every site
/// allocates nothing (and with no plan attached the cache adds only the
/// checksum, never a lock or journal entry).
bool check_disabled_probe_is_free() {
  FaultPlan plan;
  // Warm up anything lazy before counting.
  for (int i = 0; i < util::kNumFaultSites; ++i) {
    plan.fires(static_cast<FaultSite>(i), 1);
  }
  const bench::AllocationScope scope;
  bool fired = false;
  for (std::uint64_t key = 0; key < 10000; ++key) {
    for (int i = 0; i < util::kNumFaultSites; ++i) {
      fired |= plan.fires(static_cast<FaultSite>(i), key);
    }
  }
  if (fired) {
    std::fprintf(stderr, "micro_fault: disabled plan fired a site\n");
    return false;
  }
  if (scope.count() != 0) {
    std::fprintf(stderr,
                 "micro_fault: disabled probes allocated %zu times "
                 "(must be 0)\n",
                 scope.count());
    return false;
  }
  std::printf("disabled-probe allocations: 0 over 60000 probes\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!check_disabled_probe_is_free()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
