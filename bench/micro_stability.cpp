// Microbenchmarks for the stability analysis: the proposed governor runs
// analyze() + time_to_temperature() every 100 ms on-device, so these
// routines must be cheap. google-benchmark timings.
#include <benchmark/benchmark.h>

#include "stability/calibrate.h"
#include "stability/fixed_point.h"
#include "stability/presets.h"
#include "stability/trajectory.h"

namespace {

using namespace mobitherm::stability;

const Params kParams = odroid_xu3_params();

void BM_FixedPointFunction(benchmark::State& state) {
  double x = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixed_point_function(kParams, 3.0, x));
    x = x < 6.0 ? x + 1e-6 : 3.0;
  }
}
BENCHMARK(BM_FixedPointFunction);

void BM_Analyze(benchmark::State& state) {
  const double power = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(kParams, power));
  }
}
BENCHMARK(BM_Analyze)->Arg(20)->Arg(50)->Arg(54)->Arg(80);

void BM_CriticalPower(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(critical_power(kParams));
  }
}
BENCHMARK(BM_CriticalPower);

void BM_TimeToTemperature(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        time_to_temperature(kParams, 4.0, 323.15, 358.15));
  }
}
BENCHMARK(BM_TimeToTemperature);

void BM_TimeToFixedPoint(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_to_fixed_point(kParams, 3.0, 310.0));
  }
}
BENCHMARK(BM_TimeToFixedPoint);

void BM_Calibrate(benchmark::State& state) {
  CalibrationTargets targets;
  targets.t_ambient_k = 298.15;
  targets.p_observed_w = 2.0;
  targets.t_stable_k = 338.0;
  targets.p_critical_w = 5.5;
  targets.t_critical_k = 450.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(calibrate(targets, 5.9));
  }
}
BENCHMARK(BM_Calibrate);

}  // namespace
