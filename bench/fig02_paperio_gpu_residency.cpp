// Fig. 2: Adreno 430 frequency residency in the Paper.io game. Paper: the
// 510/600 MHz share collapses to zero under throttling while 390 MHz grows
// from 15% to 67%.
#include "nexus_figure.h"

int main() {
  mobitherm::bench::residency_figure("Figure 2",
                                     "paperio",
                                     /*gpu_cluster=*/true, "GPU");
  return 0;
}
