// Microbenchmarks for the thermal substrate and the full engine tick: the
// simulator advances 1000 physics ticks per simulated second, so stepping
// must stay in the microsecond range — and, after warm-up, allocation-free
// (ISSUE 2): every bench reports allocs_per_iter via the operator-new hook
// in bench_util.h, and the steady-state thermal steppers assert zero.
#define MOBITHERM_BENCH_COUNT_ALLOCS
#include "bench_util.h"

#include <benchmark/benchmark.h>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "platform/presets.h"
#include "sim/engine.h"
#include "stability/presets.h"
#include "thermal/network.h"
#include "thermal/presets.h"
#include "workload/presets.h"

namespace {

using namespace mobitherm;

// Allocations per iteration of `f` over a plain loop, away from the
// benchmark library's own state machinery (which allocates a handful of
// times inside the `for (auto _ : state)` region).
template <typename F>
double allocs_per_iteration(int iters, F&& f) {
  const bench::AllocationScope scope;
  for (int i = 0; i < iters; ++i) {
    f();
  }
  return static_cast<double>(scope.count()) / iters;
}

// Attach the allocs_per_iter counter; `max_allowed` turns the harness into
// an assertion — steady-state hot paths are required to stay off the heap
// (max_allowed = 0), and the engine tick must stay >=2x under its
// pre-rewrite ~6 allocations/tick.
void report_allocs(benchmark::State& state, double allocs_per_iter,
                   double max_allowed) {
  state.counters["allocs_per_iter"] = benchmark::Counter(allocs_per_iter);
  if (allocs_per_iter > max_allowed) {
    state.SkipWithError("hot path exceeded its allocation budget");
  }
}

// --- linalg kernels ------------------------------------------------------

void BM_LinalgGemv(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = 1.0 / static_cast<double>(i + j + 1);
    }
  }
  linalg::Vector x(n, 1.0);
  linalg::Vector y(n, 0.0);
  for (auto _ : state) {
    linalg::gemv(a, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  report_allocs(state,
                allocs_per_iteration(1000, [&] { linalg::gemv(a, x, y); }),
                0.0);
}
BENCHMARK(BM_LinalgGemv)->Arg(5)->Arg(16);

void BM_CholeskySolveInto(benchmark::State& state) {
  // SPD conductance-style matrix: diagonally dominant Laplacian + ground.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = 2.5;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  const linalg::Cholesky chol(a);
  linalg::Vector b(n, 1.0);
  linalg::Vector x(n, 0.0);
  for (auto _ : state) {
    chol.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
  report_allocs(state,
                allocs_per_iteration(1000, [&] { chol.solve_into(b, x); }),
                0.0);
}
BENCHMARK(BM_CholeskySolveInto)->Arg(5)->Arg(16);

// --- thermal network ------------------------------------------------------

void BM_NetworkStepExact(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                              thermal::StepMethod::kExact);
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  net.step(power, util::seconds(0.001));  // warm the propagator cache
  for (auto _ : state) {
    net.step(power, util::seconds(0.001));
  }
  report_allocs(state,
                allocs_per_iteration(1000, [&] { net.step(power, util::seconds(0.001)); }),
                0.0);
  benchmark::DoNotOptimize(net.temperatures());
}
BENCHMARK(BM_NetworkStepExact);

void BM_NetworkStepRk4(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                              thermal::StepMethod::kRk4);
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  net.step(power, util::seconds(0.001));  // warm the scratch buffers
  for (auto _ : state) {
    net.step(power, util::seconds(0.001));
  }
  report_allocs(state,
                allocs_per_iteration(1000, [&] { net.step(power, util::seconds(0.001)); }),
                0.0);
  benchmark::DoNotOptimize(net.temperatures());
}
BENCHMARK(BM_NetworkStepRk4);

void BM_NetworkSteadyState(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network());
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.steady_state(power));
  }
  report_allocs(state, allocs_per_iteration(1000, [&] {
                  benchmark::DoNotOptimize(net.steady_state(power));
                }),
                1.0);  // the returned vector is the only allocation
}
BENCHMARK(BM_NetworkSteadyState);

// Governor-side steady_state at tick rate against the construction-time
// factorization, writing into caller-owned scratch: the fully cached path.
void BM_NetworkSteadyStateCached(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network());
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  linalg::Vector out(net.num_nodes(), 0.0);
  for (auto _ : state) {
    net.steady_state_into(power, out);
    benchmark::DoNotOptimize(out.data());
  }
  report_allocs(state, allocs_per_iteration(
                           1000, [&] { net.steady_state_into(power, out); }),
                0.0);
}
BENCHMARK(BM_NetworkSteadyStateCached);

void BM_EngineTick(benchmark::State& state) {
  const stability::Params p = stability::odroid_xu3_params();
  sim::Engine engine(platform::exynos5422(), thermal::odroidxu3_network(),
                     power::LeakageParams{p.leak_theta_k, p.leak_a_w_per_k2},
                     0.25);
  engine.add_app(workload::threedmark());
  engine.add_app(workload::bml());
  engine.run(2.0);  // warm sliding windows, trace and scratch buffers
  for (auto _ : state) {
    engine.run(0.001);  // one tick
  }
  // Pre-rewrite the engine allocated ~6 times per tick; the acceptance bar
  // is >=2x fewer. Only decimated trace points remain (~0.02/tick).
  report_allocs(state,
                allocs_per_iteration(1000, [&] { engine.run(0.001); }), 3.0);
  benchmark::DoNotOptimize(engine.total_power_w());
}
BENCHMARK(BM_EngineTick);

void BM_EngineSimulatedSecond(benchmark::State& state) {
  const stability::Params p = stability::odroid_xu3_params();
  sim::Engine engine(platform::exynos5422(), thermal::odroidxu3_network(),
                     power::LeakageParams{p.leak_theta_k, p.leak_a_w_per_k2},
                     0.25);
  engine.add_app(workload::threedmark());
  engine.run(2.0);
  for (auto _ : state) {
    engine.run(1.0);
  }
  report_allocs(state, allocs_per_iteration(5, [&] { engine.run(1.0); }),
                3000.0);  // pre-rewrite: ~6040 allocations per second
  state.SetItemsProcessed(state.iterations() * 1000);  // ticks
}
BENCHMARK(BM_EngineSimulatedSecond);

}  // namespace
