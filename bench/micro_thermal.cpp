// Microbenchmarks for the thermal substrate and the full engine tick: the
// simulator advances 1000 physics ticks per simulated second, so stepping
// must stay in the microsecond range.
#include <benchmark/benchmark.h>

#include "platform/presets.h"
#include "sim/engine.h"
#include "stability/presets.h"
#include "thermal/network.h"
#include "thermal/presets.h"
#include "workload/presets.h"

namespace {

using namespace mobitherm;

void BM_NetworkStepExact(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                              thermal::StepMethod::kExact);
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  for (auto _ : state) {
    net.step(power, 0.001);
  }
  benchmark::DoNotOptimize(net.temperatures());
}
BENCHMARK(BM_NetworkStepExact);

void BM_NetworkStepRk4(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                              thermal::StepMethod::kRk4);
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  for (auto _ : state) {
    net.step(power, 0.001);
  }
  benchmark::DoNotOptimize(net.temperatures());
}
BENCHMARK(BM_NetworkStepRk4);

void BM_NetworkSteadyState(benchmark::State& state) {
  thermal::ThermalNetwork net(thermal::odroidxu3_network());
  const linalg::Vector power = {0.2, 2.0, 1.5, 0.3, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.steady_state(power));
  }
}
BENCHMARK(BM_NetworkSteadyState);

void BM_EngineTick(benchmark::State& state) {
  const stability::Params p = stability::odroid_xu3_params();
  sim::Engine engine(platform::exynos5422(), thermal::odroidxu3_network(),
                     power::LeakageParams{p.leak_theta_k, p.leak_a_w_per_k2},
                     0.25);
  engine.add_app(workload::threedmark());
  engine.add_app(workload::bml());
  for (auto _ : state) {
    engine.run(0.001);  // one tick
  }
  benchmark::DoNotOptimize(engine.total_power_w());
}
BENCHMARK(BM_EngineTick);

void BM_EngineSimulatedSecond(benchmark::State& state) {
  const stability::Params p = stability::odroid_xu3_params();
  sim::Engine engine(platform::exynos5422(), thermal::odroidxu3_network(),
                     power::LeakageParams{p.leak_theta_k, p.leak_a_w_per_k2},
                     0.25);
  engine.add_app(workload::threedmark());
  for (auto _ : state) {
    engine.run(1.0);
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // ticks
}
BENCHMARK(BM_EngineSimulatedSecond);

}  // namespace
