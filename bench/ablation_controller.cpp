// Ablations of the proposed controller's design choices (DESIGN.md Sec. 5):
//   * control period (paper: 100 ms),
//   * utilization/power window (paper: 1 s),
//   * time-to-fixed-point limit (imminence threshold),
//   * realtime registration honoured vs. ignored,
//   * migrate-back extension on/off.
// Each row reports foreground GT1 fps, peak temperature, migrations and
// background progress on the 3DMark+BML scenario.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/appaware.h"
#include "platform/presets.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "stability/presets.h"
#include "thermal/presets.h"
#include "util/units.h"
#include "workload/presets.h"

namespace {

using namespace mobitherm;

struct Row {
  double gt1_fps;
  double peak_c;
  std::size_t migrations;
  double bml_work;
};

Row run(double period_s, double window_s, double time_limit_s,
        bool honour_realtime, bool migrate_back,
        double fg_cpu_work_scale = 1.0) {
  const platform::SocSpec spec = platform::exynos5422();
  sim::EngineConfig ecfg;
  ecfg.window_s = window_s;
  const stability::Params params = stability::odroid_xu3_params();
  sim::Engine engine(spec, thermal::odroidxu3_network(),
                     power::LeakageParams{params.leak_theta_k,
                                          params.leak_a_w_per_k2},
                     0.25, ecfg);
  engine.set_initial_temperature(util::celsius_to_kelvin(50.0));

  core::AppAwareConfig cfg = sim::odroid_appaware_config(spec);
  cfg.period_s = period_s;
  cfg.time_limit_s = time_limit_s;
  cfg.migrate_back = migrate_back;
  engine.set_appaware_governor(
      std::make_unique<core::AppAwareGovernor>(cfg, params));

  workload::AppSpec mark = workload::threedmark();
  mark.realtime = honour_realtime;  // ignored registration = not exempt
  for (workload::Phase& ph : mark.phases) {
    ph.cpu_work_per_frame *= fg_cpu_work_scale;
  }
  const std::size_t fg = engine.add_app(mark);
  const std::size_t bg = engine.add_app(workload::bml());
  engine.run(250.0);

  Row row;
  // Mean fps over GT1 seconds (phase 0 of the looping schedule).
  const workload::AppInstance& app = engine.app(fg);
  double sum = 0.0;
  int count = 0;
  for (std::size_t sec = 0; sec < app.fps_samples().size(); ++sec) {
    if (app.phase_index_at(sec + 0.5) == 0) {
      sum += app.fps_samples()[sec];
      ++count;
    }
  }
  row.gt1_fps = count > 0 ? sum / count : 0.0;
  double peak = 0.0;
  for (const sim::TracePoint& p : engine.trace().points()) {
    peak = std::max(peak, p.max_chip_temp_k - 273.15);
  }
  row.peak_c = peak;
  row.migrations = 0;
  for (const auto& [t, d] : engine.decisions()) {
    if (d.migrated.has_value()) {
      ++row.migrations;
    }
  }
  row.bml_work =
      engine.scheduler().process(engine.app(bg).cpu_pid()).completed_work();
  return row;
}

void print(const char* label, const Row& r) {
  std::printf("%-40s GT1 %6.1f fps  peak %5.1f degC  migrations %2zu  "
              "BML %.3g\n",
              label, r.gt1_fps, r.peak_c, r.migrations, r.bml_work);
}

}  // namespace

int main() {
  bench::header("Ablation", "proposed-controller design choices "
                            "(3DMark + BML on the Odroid-XU3 model)");
  std::printf("\nbaseline: period 100 ms, window 1 s, time limit 60 s, "
              "realtime honoured, no migrate-back\n\n");

  print("baseline", run(0.1, 1.0, 60.0, true, false));
  std::printf("\n[control period]\n");
  print("period 20 ms", run(0.02, 1.0, 60.0, true, false));
  print("period 500 ms", run(0.5, 1.0, 60.0, true, false));
  print("period 2 s", run(2.0, 1.0, 60.0, true, false));
  std::printf("\n[power/utilization window]\n");
  print("window 0.1 s (no peak filtering)", run(0.1, 0.1, 60.0, true, false));
  print("window 5 s (sluggish)", run(0.1, 5.0, 60.0, true, false));
  std::printf("\n[time-to-violation limit]\n");
  print("time limit 5 s (acts late)", run(0.1, 1.0, 5.0, true, false));
  print("time limit 300 s (acts early)", run(0.1, 1.0, 300.0, true, false));
  std::printf("\n[realtime registration]\n");
  print("ignored, GPU-bound foreground", run(0.1, 1.0, 60.0, false, false));
  print("honoured, CPU-heavy foreground",
        run(0.1, 1.0, 60.0, true, false, 3.0));
  print("ignored, CPU-heavy foreground",
        run(0.1, 1.0, 60.0, false, false, 3.0));
  std::printf("\n[migrate-back extension]\n");
  print("migrate-back enabled", run(0.1, 1.0, 60.0, true, true));
  return 0;
}
