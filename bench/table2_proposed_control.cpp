// Table II: application performance under the proposed control algorithm.
//
// Paper values:
//   3DMark GT1:  97 fps alone | 86 fps +BML | 93 fps +BML+proposed
//   3DMark GT2:  51 fps alone | 49 fps +BML | 51 fps +BML+proposed
//   Nenamark3:  3.5 levels    | 3.4 levels  | 3.5 levels
#include <cstdio>

#include "bench_util.h"
#include "odroid_scenarios.h"
#include "workload/presets.h"

int main() {
  using namespace mobitherm;
  bench::header("Table II",
                "foreground performance under the three control scenarios");

  const bench::OdroidTriple mark = bench::run_triple("threedmark");

  // Nenamark: six escalating levels, 20 s each; the score interpolates the
  // level at which the fps crosses the 30 fps threshold. The run starts
  // warm (78 degC) — on the real board prior benchmark runs and the
  // background task have already heated the SoC before the critical
  // levels execute, which is when the default policy's throttling bites.
  const bench::OdroidTriple nrun =
      bench::run_triple("nenamark", 6 * 20.0, 78.0, /*app_levels=*/6,
                        /*app_phase_s=*/20.0);
  const double n_alone = workload::nenamark_score(nrun.alone.phase_fps);
  const double n_bml = workload::nenamark_score(nrun.with_bml.phase_fps);
  const double n_prop = workload::nenamark_score(nrun.proposed.phase_fps);

  std::printf("\n%-13s | %17s | %17s | %21s\n", "Test", "App. alone",
              "App. + BML", "App.+BML+Proposed");
  std::printf("%-13s | %8s %8s | %8s %8s | %10s %10s\n", "", "paper",
              "measured", "paper", "measured", "paper", "measured");
  std::printf("--------------+-------------------+-------------------+"
              "----------------------\n");
  std::printf("%-13s | %8.0f %8.1f | %8.0f %8.1f | %10.0f %10.1f\n",
              "3DMark GT1", 97.0, mark.alone.phase_fps[0], 86.0,
              mark.with_bml.phase_fps[0], 93.0, mark.proposed.phase_fps[0]);
  std::printf("%-13s | %8.0f %8.1f | %8.0f %8.1f | %10.0f %10.1f\n",
              "3DMark GT2", 51.0, mark.alone.phase_fps[1], 49.0,
              mark.with_bml.phase_fps[1], 51.0, mark.proposed.phase_fps[1]);
  std::printf("%-13s | %8.1f %8.2f | %8.1f %8.2f | %10.1f %10.2f\n",
              "Nenamark3", 3.5, n_alone, 3.4, n_bml, 3.5, n_prop);

  std::printf("\nBackground BML progress (work units): default %.3g, "
              "proposed %.3g\n(the proposed controller throttles only BML, "
              "which keeps running on the\nLITTLE cluster).\n",
              mark.with_bml.bml_work, mark.proposed.bml_work);
  std::printf("Proposed-controller migrations: %zu\n",
              mark.proposed.migrations);
  return 0;
}
