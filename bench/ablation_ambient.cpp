// Ambient-temperature sensitivity (refs [20][21] of the paper study
// ambient-aware management): how the critical power, the safe budget at
// 85 degC, and the 3DMark+BML outcome under the proposed governor shift
// with ambient temperature.
#include <cstdio>

#include "bench_util.h"
#include "core/appaware.h"
#include "platform/presets.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "stability/presets.h"
#include "stability/safety.h"
#include "thermal/presets.h"
#include "util/units.h"
#include "workload/presets.h"

int main() {
  using namespace mobitherm;
  bench::header("Ambient ablation",
                "critical power and proposed-governor outcome vs. ambient");

  std::printf("\n%-12s %14s %16s %12s %12s\n", "ambient", "critical (W)",
              "budget@85C (W)", "peak (degC)", "migrations");
  for (double ambient_c : {15.0, 25.0, 35.0, 45.0}) {
    stability::Params params = stability::odroid_xu3_params();
    params.t_ambient_k = util::celsius(ambient_c);
    const double p_crit = stability::critical_power(params);
    const double budget =
        stability::safe_power(params, util::celsius_to_kelvin(85.0));

    const platform::SocSpec spec = platform::exynos5422();
    sim::Engine engine(
        spec, thermal::odroidxu3_network(util::celsius(ambient_c)),
        power::LeakageParams{params.leak_theta_k, params.leak_a_w_per_k2},
        0.25);
    engine.set_initial_temperature(
        util::celsius_to_kelvin(ambient_c + 25.0));
    engine.set_appaware_governor(std::make_unique<core::AppAwareGovernor>(
        sim::odroid_appaware_config(spec), params));
    engine.add_app(workload::threedmark());
    engine.add_app(workload::bml());
    engine.run(250.0);

    double peak = 0.0;
    for (const sim::TracePoint& p : engine.trace().points()) {
      peak = std::max(peak, p.max_chip_temp_k - 273.15);
    }
    std::size_t migrations = 0;
    for (const auto& [t, d] : engine.decisions()) {
      migrations += d.all_migrated.size();
    }
    std::printf("%8.0f degC %14.2f %16.2f %12.1f %12zu\n", ambient_c,
                p_crit, budget, peak, migrations);
  }
  std::printf(
      "\nHotter ambients shrink both the runaway margin and the sustainable\n"
      "budget; the governor compensates by migrating earlier, but the\n"
      "steady temperature rises roughly with the ambient.\n");
  return 0;
}
