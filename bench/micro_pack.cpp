// Microbenchmarks for the workload-pack catalog path (PR 10): JSON pack
// parsing + content hashing, registry resolution of pack-qualified
// requests, and the per-tick cost of the synthetic stressor workloads.
// main() asserts the catalog invariant before benchmarking: parsing the
// same document twice yields the same content hash, and a pack-qualified
// request resolves to a canonical key that pins it.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "service/scenario_registry.h"
#include "workload/app.h"
#include "workload/pack.h"
#include "workload/synthetic.h"

namespace {

using namespace mobitherm;

/// A representative pack document: one scripted app, one templated app.
const char* kBenchPackText = R"({
  "pack": "bench",
  "description": "micro_pack probe",
  "apps": [
    {"name": "spike", "target_fps": 60, "threads": 4,
     "phases": [
       {"duration_s": 20, "cpu_work_per_frame": 3.0e7,
        "gpu_work_per_frame": 1.5e7},
       {"duration_s": 10, "cpu_work_per_frame": 1.2e8,
        "gpu_work_per_frame": 6.0e7},
       {"duration_s": 30, "cpu_work_per_frame": 5.0e7,
        "gpu_work_per_frame": 2.0e7}
     ]},
    {"name": "burn", "template": {"name": "cpu_burn_ramp",
     "steps": 12, "step_s": 4, "cpu_from": 2.0e7, "cpu_to": 2.4e8}}
  ]
})";

service::ScenarioRegistry pack_registry() {
  service::ScenarioRegistry registry =
      service::ScenarioRegistry::standard();
  auto packs = std::make_shared<workload::PackSet>();
  packs->add(workload::synthetic_stressor_pack());
  packs->add(workload::parse_pack_text(kBenchPackText, "bench.json"));
  registry.attach_packs(std::move(packs));
  return registry;
}

service::SimRequest pack_request() {
  service::SimRequest req;
  req.scenario = "nexus";
  req.app = "bench/spike";
  req.duration_s = 10.0;
  return req;
}

void BM_PackParseAndHash(benchmark::State& state) {
  const std::string text = kBenchPackText;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workload::parse_pack_text(text, "bench.json"));
  }
}
BENCHMARK(BM_PackParseAndHash)->Unit(benchmark::kMicrosecond);

void BM_SyntheticPackBuild(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::synthetic_stressor_pack());
  }
}
BENCHMARK(BM_SyntheticPackBuild)->Unit(benchmark::kMicrosecond);

void BM_PackCanonicalKey(benchmark::State& state) {
  const service::ScenarioRegistry registry = pack_registry();
  const service::SimRequest req = pack_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.canonical_key(req));
  }
}
BENCHMARK(BM_PackCanonicalKey);

void BM_PackEngineBuild(benchmark::State& state) {
  const service::ScenarioRegistry registry = pack_registry();
  const service::SimRequest req = pack_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.make_engine(req));
  }
}
BENCHMARK(BM_PackEngineBuild)->Unit(benchmark::kMicrosecond);

/// Tick cost of one synthetic stressor through the full engine loop: one
/// simulated second of the cpu-burn ramp per iteration.
void BM_SyntheticStressorSimSecond(benchmark::State& state) {
  const service::ScenarioRegistry registry = pack_registry();
  service::SimRequest req;
  req.scenario = "nexus";
  req.app = "synthetic/cpu_burn_ramp";
  req.duration_s = 1.0;
  for (auto _ : state) {
    auto engine = registry.make_engine(req);
    engine->run(1.0);
    benchmark::DoNotOptimize(engine);
  }
}
BENCHMARK(BM_SyntheticStressorSimSecond)->Unit(benchmark::kMillisecond);

/// Catalog invariants pinned before benchmarking: deterministic content
/// hash, and pack-qualified canonical keys that embed it.
bool check_pack_invariants() {
  const workload::WorkloadPack a =
      workload::parse_pack_text(kBenchPackText, "bench.json");
  const workload::WorkloadPack b =
      workload::parse_pack_text(kBenchPackText, "bench.json");
  if (a.content_hash != b.content_hash) {
    std::fprintf(stderr, "micro_pack: content hash is not deterministic\n");
    return false;
  }
  const service::ScenarioRegistry registry = pack_registry();
  const std::string key = registry.canonical_key(pack_request());
  if (key.find(";pack=" + a.content_hash_hex()) == std::string::npos) {
    std::fprintf(stderr,
                 "micro_pack: canonical key does not pin the pack content "
                 "hash: %s\n",
                 key.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!check_pack_invariants()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
