// Fig. 1: temperature profile for the Paper.io game, with and without the
// default thermal governor (paper: unthrottled run reaches ~50 degC; the
// governor holds the package near its trip point).
#include "nexus_figure.h"

int main() {
  mobitherm::bench::temperature_figure(
      "Figure 1", "paperio",
      /*paper_peak_without_c=*/50.0, /*paper_peak_with_c=*/42.0);
  return 0;
}
