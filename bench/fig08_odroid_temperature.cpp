// Fig. 8: maximum system temperature on the Odroid-XU3 while running
// 3DMark under three scenarios — alone, with a background BML task under
// the default policy, and with BML under the proposed application-aware
// controller. Paper shape: +BML (default) climbs toward ~95 degC; the
// proposed controller migrates BML and tracks the standalone curve.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "odroid_scenarios.h"

int main() {
  using namespace mobitherm;
  bench::header("Figure 8", "Odroid-XU3 max temperature, 3DMark scenarios");

  const bench::OdroidTriple t = bench::run_triple("threedmark");

  std::vector<std::vector<double>> rows;
  const auto& a = t.alone.max_temp_trace_c;
  const auto& b = t.with_bml.max_temp_trace_c;
  const auto& c = t.proposed.max_temp_trace_c;
  for (std::size_t i = 0; i < a.size() && i < b.size() && i < c.size(); ++i) {
    rows.push_back({a[i].first, a[i].second, b[i].second, c[i].second});
  }
  bench::series_block(
      "max temperature trace (plot to regenerate the figure)",
      {"time_s", "3dmark_alone_c", "3dmark_bml_default_c",
       "3dmark_bml_proposed_c"},
      rows);

  std::printf("\n");
  bench::paper_vs_measured("peak, 3DMark alone", 83.0, t.alone.peak_temp_c,
                           "degC");
  bench::paper_vs_measured("peak, 3DMark + BML (default)", 95.0,
                           t.with_bml.peak_temp_c, "degC");
  bench::paper_vs_measured("peak, 3DMark + BML (proposed)", 85.0,
                           t.proposed.peak_temp_c, "degC");
  std::printf("\nmigrations by the proposed controller: %zu (the BML task)\n",
              t.proposed.migrations);
  return 0;
}
