// Shared scaffolding for the Odroid-XU3 experiments (Fig. 8 / Fig. 9 /
// Table II): 3DMark alone, 3DMark + BML under the default kernel policy,
// and 3DMark + BML under the proposed application-aware governor.
#pragma once

#include "sim/experiment.h"
#include "workload/presets.h"

namespace mobitherm::bench {

struct OdroidTriple {
  sim::OdroidResult alone;
  sim::OdroidResult with_bml;
  sim::OdroidResult proposed;
};

inline OdroidTriple run_triple(const workload::AppSpec& foreground,
                               double duration_s = 250.0,
                               double initial_temp_c = 50.0) {
  sim::OdroidRun run;
  run.foreground = foreground;
  run.duration_s = duration_s;
  run.initial_temp_c = initial_temp_c;

  run.with_bml = false;
  run.policy = sim::ThermalPolicy::kDefault;
  OdroidTriple t{sim::run_odroid(run), {}, {}};

  run.with_bml = true;
  t.with_bml = sim::run_odroid(run);

  run.policy = sim::ThermalPolicy::kProposed;
  t.proposed = sim::run_odroid(run);
  return t;
}

}  // namespace mobitherm::bench
