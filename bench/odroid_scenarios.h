// Shared scaffolding for the Odroid-XU3 experiments (Fig. 8 / Fig. 9 /
// Table II): the foreground benchmark alone, foreground + BML under the
// default kernel policy, and foreground + BML under the proposed
// application-aware governor.
//
// The foreground app is named by its registry key ("threedmark",
// "nenamark"): every engine here is exactly what the service-layer
// `odroid` scenario would build for the same request.
#pragma once

#include <string>

#include "service/scenario_registry.h"
#include "sim/batch.h"
#include "sim/experiment.h"

namespace mobitherm::bench {

struct OdroidTriple {
  sim::OdroidResult alone;
  sim::OdroidResult with_bml;
  sim::OdroidResult proposed;
};

/// The three policy scenarios are independent engines, so they fan across
/// the batch pool (worker count bounded by the hardware).
/// `app_levels`/`app_phase_s` parameterize the apps that accept them
/// (nenamark levels, threedmark phase length); negative = preset default.
inline OdroidTriple run_triple(const std::string& foreground,
                               double duration_s = 250.0,
                               double initial_temp_c = 50.0,
                               int app_levels = -1,
                               double app_phase_s = -1.0) {
  const service::ScenarioRegistry& registry = service::standard_registry();
  OdroidTriple t;
  sim::OdroidResult* out[3] = {&t.alone, &t.with_bml, &t.proposed};
  sim::parallel_for_index(3, 3, [&](std::size_t i) {
    service::SimRequest req;
    req.scenario = "odroid";
    req.app = foreground;
    req.with_bml = i > 0;
    req.policy = i == 2 ? "proposed" : "default";
    req.duration_s = duration_s;
    req.initial_temp_c = initial_temp_c;
    req.app_levels = app_levels;
    req.app_phase_s = app_phase_s;
    std::unique_ptr<sim::Engine> engine = registry.make_engine(req);
    engine->run(duration_s);
    *out[i] = sim::odroid_result_from(*engine, req.with_bml);
  });
  return t;
}

}  // namespace mobitherm::bench
