// Shared scaffolding for the Odroid-XU3 experiments (Fig. 8 / Fig. 9 /
// Table II): 3DMark alone, 3DMark + BML under the default kernel policy,
// and 3DMark + BML under the proposed application-aware governor.
#pragma once

#include "sim/batch.h"
#include "sim/experiment.h"
#include "workload/presets.h"

namespace mobitherm::bench {

struct OdroidTriple {
  sim::OdroidResult alone;
  sim::OdroidResult with_bml;
  sim::OdroidResult proposed;
};

/// The three policy scenarios are independent engines, so they fan across
/// the batch pool (worker count bounded by the hardware).
inline OdroidTriple run_triple(const workload::AppSpec& foreground,
                               double duration_s = 250.0,
                               double initial_temp_c = 50.0) {
  OdroidTriple t;
  sim::OdroidResult* out[3] = {&t.alone, &t.with_bml, &t.proposed};
  sim::parallel_for_index(3, 3, [&](std::size_t i) {
    sim::OdroidRun run;
    run.foreground = foreground;
    run.duration_s = duration_s;
    run.initial_temp_c = initial_temp_c;
    run.with_bml = i > 0;
    run.policy = i == 2 ? sim::ThermalPolicy::kProposed
                        : sim::ThermalPolicy::kDefault;
    *out[i] = sim::run_odroid(run);
  });
  return t;
}

}  // namespace mobitherm::bench
