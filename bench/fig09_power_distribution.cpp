// Fig. 9: power-consumption distribution over the Odroid-XU3 rails
// (little/A7, big/A15, GPU, memory) for the three 3DMark scenarios.
// Paper shape: the GPU rail dominates when 3DMark runs alone; BML pushes
// the big-core share from 38% to 60%; the proposed controller's migration
// brings it back to ~42% while the little share rises 7% -> 16%.
#include <cstdio>

#include "bench_util.h"
#include "odroid_scenarios.h"

namespace {

void pie(const char* title, const mobitherm::sim::OdroidResult& r) {
  double total = 0.0;
  for (double w : r.mean_rail_w) {
    total += w;
  }
  std::printf("\n-- %s (total %.2f W across rails) --\n", title, total);
  for (std::size_t i = 0; i < r.mean_rail_w.size(); ++i) {
    const double share = total > 0.0 ? r.mean_rail_w[i] / total : 0.0;
    std::printf("%-12s %5.2f W  %5.1f%%  ", r.rail_names[i].c_str(),
                r.mean_rail_w[i], 100.0 * share);
    for (int b = 0; b < static_cast<int>(share * 50.0 + 0.5); ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace mobitherm;
  bench::header("Figure 9", "Odroid-XU3 rail power distribution, 3DMark");

  const bench::OdroidTriple t = bench::run_triple("threedmark");
  pie("(a) 3DMark alone", t.alone);
  pie("(b) 3DMark + BML, default policy", t.with_bml);
  pie("(c) 3DMark + BML, proposed controller", t.proposed);

  const std::size_t little = 0;
  const std::size_t big = 1;
  auto share = [](const sim::OdroidResult& r, std::size_t i) {
    double total = 0.0;
    for (double w : r.mean_rail_w) {
      total += w;
    }
    return 100.0 * r.mean_rail_w[i] / total;
  };
  std::printf("\n");
  bench::paper_vs_measured("big share, alone", 38.0, share(t.alone, big),
                           "%");
  bench::paper_vs_measured("big share, +BML default", 60.0,
                           share(t.with_bml, big), "%");
  bench::paper_vs_measured("big share, +BML proposed", 42.0,
                           share(t.proposed, big), "%");
  bench::paper_vs_measured("little share, +BML default", 7.0,
                           share(t.with_bml, little), "%");
  bench::paper_vs_measured("little share, +BML proposed", 16.0,
                           share(t.proposed, little), "%");
  return 0;
}
