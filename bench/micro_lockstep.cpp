// Microbenchmarks for the lockstep multi-lane physics path (sim/lockstep.h,
// ThermalNetwork::step_block), plus the two invariants this PR pins, both
// asserted in main() before the benchmarks run so the bench-smoke job fails
// loudly when they regress:
//
//   1. Aggregate step throughput: one step_block over a K-lane block must
//      move >= 4x more lane-steps per second than K scalar step() calls,
//      for K >= 8 (the SoA payoff the lockstep refactor exists for).
//   2. Zero allocations on the warm path: a warm step_block never touches
//      the heap, and a warm fused LockstepRunner tick stays within the
//      per-engine tick budget (decimated trace points only).
#define MOBITHERM_BENCH_COUNT_ALLOCS
#include "bench_util.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/lockstep.h"
#include "thermal/network.h"
#include "thermal/presets.h"
#include "workload/presets.h"

namespace {

using namespace mobitherm;

constexpr double kDt = 0.001;

// Allocations per iteration of `f` over a plain loop, away from the
// benchmark library's own state machinery (same shape as micro_thermal).
template <typename F>
double allocs_per_iteration(int iters, F&& f) {
  const bench::AllocationScope scope;
  for (int i = 0; i < iters; ++i) {
    f();
  }
  return static_cast<double>(scope.count()) / iters;
}

// Attach the allocs_per_iter counter; `max_allowed` turns the harness into
// an assertion.
void report_allocs(benchmark::State& state, double allocs_per_iter,
                   double max_allowed) {
  state.counters["allocs_per_iter"] = benchmark::Counter(allocs_per_iter);
  if (allocs_per_iter > max_allowed) {
    state.SkipWithError("hot path exceeded its allocation budget");
  }
}

// One scalar reference network per lane (the pre-lockstep shape: every
// engine steps its own network), states decorrelated across lanes.
std::vector<std::unique_ptr<thermal::ThermalNetwork>> scalar_lanes(
    std::size_t k) {
  std::vector<std::unique_ptr<thermal::ThermalNetwork>> nets;
  for (std::size_t c = 0; c < k; ++c) {
    nets.push_back(std::make_unique<thermal::ThermalNetwork>(
        thermal::odroidxu3_network(), thermal::StepMethod::kExact));
    linalg::Vector t0(nets[c]->num_nodes());
    for (std::size_t i = 0; i < t0.size(); ++i) {
      t0[i] = 300.0 + static_cast<double>(c) + 0.5 * static_cast<double>(i);
    }
    nets[c]->set_temperatures(t0);
  }
  return nets;
}

linalg::Matrix lane_power(std::size_t n, std::size_t k) {
  linalg::Matrix power(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k; ++c) {
      power(i, c) = 0.1 + 0.3 * static_cast<double>(c) +
                    0.05 * static_cast<double>(i);
    }
  }
  return power;
}

linalg::Matrix lane_temps(std::size_t n, std::size_t k) {
  linalg::Matrix temps(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < k; ++c) {
      temps(i, c) = 300.0 + static_cast<double>(c) +
                    0.5 * static_cast<double>(i);
    }
  }
  return temps;
}

// --- benchmarks -----------------------------------------------------------

void BM_ScalarStepLoop(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  auto nets = scalar_lanes(k);
  const linalg::Matrix power = lane_power(nets[0]->num_nodes(), k);
  std::vector<linalg::Vector> powers(k);
  for (std::size_t c = 0; c < k; ++c) {
    powers[c].resize(power.rows());
    for (std::size_t i = 0; i < power.rows(); ++i) {
      powers[c][i] = power(i, c);
    }
    nets[c]->step(powers[c], util::seconds(kDt));  // warm the propagator
  }
  for (auto _ : state) {
    for (std::size_t c = 0; c < k; ++c) {
      nets[c]->step(powers[c], util::seconds(kDt));
    }
  }
  state.SetItemsProcessed(state.iterations() * k);  // lane-steps
}
BENCHMARK(BM_ScalarStepLoop)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

void BM_StepBlock(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                              thermal::StepMethod::kExact);
  const std::size_t n = net.num_nodes();
  const linalg::Matrix power = lane_power(n, k);
  linalg::Matrix temps = lane_temps(n, k);
  net.step_block(power, temps, util::seconds(kDt));  // warm the scratch
  for (auto _ : state) {
    net.step_block(power, temps, util::seconds(kDt));
  }
  state.SetItemsProcessed(state.iterations() * k);  // lane-steps
  report_allocs(state, allocs_per_iteration(1000, [&] {
                         net.step_block(power, temps, util::seconds(kDt));
                       }),
                       0.0);
  benchmark::DoNotOptimize(temps.row_data(0));
}
BENCHMARK(BM_StepBlock)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

// Full engines in lockstep: K Nexus lanes advanced one simulated
// millisecond (one tick) per iteration, fused physics.
void BM_LockstepEngineTick(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<sim::Engine>> engines;
  std::vector<sim::LockstepRunner::Lane> lanes;
  for (std::size_t c = 0; c < k; ++c) {
    sim::NexusRun run;
    run.app = workload::paperio();
    run.seed = 42 + c;
    engines.push_back(sim::make_nexus_engine(run));
    lanes.push_back({engines[c].get(), nullptr});
  }
  sim::LockstepRunner runner(std::move(lanes));
  runner.run(2.0);  // warm sliding windows, traces and lane-block scratch
  for (auto _ : state) {
    runner.run(kDt);
  }
  state.SetItemsProcessed(state.iterations() * k);  // lane-ticks
  // Same per-engine budget as BM_EngineTick (decimated trace points only).
  report_allocs(
      state,
      allocs_per_iteration(1000, [&] { runner.run(kDt); }),
      3.0 * static_cast<double>(k));
}
BENCHMARK(BM_LockstepEngineTick)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

// --- pinned invariants ----------------------------------------------------

// Best-of-3 wall time: this box is a single shared vCPU, so any one run
// can absorb scheduler noise; the minimum estimates the undisturbed cost.
double seconds_of(const std::function<void()>& f) {
  using clock = std::chrono::steady_clock;
  double best = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    f();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

/// Lane-steps per second moved by K scalar step() calls vs one K-wide
/// step_block, over the same total lane-step count.
bool check_block_speedup() {
  constexpr std::size_t kTotalLaneSteps = 400000;
  bool ok = true;
  for (const std::size_t k : {1u, 4u, 8u, 16u}) {
    auto nets = scalar_lanes(k);
    const std::size_t n = nets[0]->num_nodes();
    const linalg::Matrix power = lane_power(n, k);
    std::vector<linalg::Vector> powers(k);
    for (std::size_t c = 0; c < k; ++c) {
      powers[c].resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        powers[c][i] = power(i, c);
      }
      nets[c]->step(powers[c], util::seconds(kDt));
    }
    const std::size_t reps = kTotalLaneSteps / k;
    const double scalar_s = seconds_of([&] {
      for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t c = 0; c < k; ++c) {
          nets[c]->step(powers[c], util::seconds(kDt));
        }
      }
    });

    thermal::ThermalNetwork block_net(thermal::odroidxu3_network(),
                                      thermal::StepMethod::kExact);
    linalg::Matrix temps = lane_temps(n, k);
    block_net.step_block(power, temps, util::seconds(kDt));
    const double block_s = seconds_of([&] {
      for (std::size_t r = 0; r < reps; ++r) {
        block_net.step_block(power, temps, util::seconds(kDt));
      }
    });
    benchmark::DoNotOptimize(temps.row_data(0));

    const double speedup = block_s > 0.0 ? scalar_s / block_s : 1e9;
    std::printf(
        "lockstep step throughput K=%-2zu: %.0fx (scalar %.3f s, block "
        "%.3f s for %zu lane-steps)\n",
        k, speedup, scalar_s, block_s, reps * k);
    if (k >= 8 && speedup < 4.0) {
      std::fprintf(stderr,
                   "micro_lockstep: aggregate step speedup %.2fx < required "
                   "4x at K=%zu\n",
                   speedup, k);
      ok = false;
    }
  }
  return ok;
}

/// Warm step_block must not allocate at any lane width.
bool check_zero_alloc_warm_block() {
  for (const std::size_t k : {1u, 4u, 8u, 16u}) {
    thermal::ThermalNetwork net(thermal::odroidxu3_network(),
                                thermal::StepMethod::kExact);
    const std::size_t n = net.num_nodes();
    const linalg::Matrix power = lane_power(n, k);
    linalg::Matrix temps = lane_temps(n, k);
    net.step_block(power, temps, util::seconds(kDt));  // warm
    const double allocs = allocs_per_iteration(1000, [&] {
      net.step_block(power, temps, util::seconds(kDt));
    });
    if (allocs > 0.0) {
      std::fprintf(stderr,
                   "micro_lockstep: warm step_block allocates (%.3f "
                   "allocs/step at K=%zu)\n",
                   allocs, k);
      return false;
    }
  }
  std::printf("warm step_block: 0 allocations/step at K=1,4,8,16\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!check_block_speedup() || !check_zero_alloc_warm_block()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
