// Fig. 4: Adreno 430 frequency residency in the Stickman Hook game.
// Paper: 450/510 MHz drop to ~zero; 180 MHz grows 12% -> 31% and 305 MHz
// 0% -> 9%.
#include "nexus_figure.h"

int main() {
  mobitherm::bench::residency_figure("Figure 4",
                                     "stickman_hook",
                                     /*gpu_cluster=*/true, "GPU");
  return 0;
}
