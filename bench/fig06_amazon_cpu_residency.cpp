// Fig. 6: big-core (A57) frequency residency in the Amazon app. Paper: the
// 960 MHz share drops 32% -> 23% under throttling while 384 MHz grows
// 25% -> 37% (Amazon is CPU-bound, so the CPU zone does the throttling).
#include "nexus_figure.h"

int main() {
  mobitherm::bench::residency_figure("Figure 6",
                                     "amazon",
                                     /*gpu_cluster=*/false, "big-core");
  return 0;
}
