// Fig. 3: temperature profile for the Stickman Hook game (paper: the
// unthrottled run exceeds 50 degC after ~50 s; throttling keeps the
// maximum temperature near 40 degC).
#include "nexus_figure.h"

int main() {
  mobitherm::bench::temperature_figure(
      "Figure 3", "stickman_hook",
      /*paper_peak_without_c=*/50.0, /*paper_peak_with_c=*/40.0);
  return 0;
}
