// Fig. 5: temperature profile for the Amazon shopping app (paper: both
// runs track each other for ~80 s, after which the unthrottled run keeps
// heating while the governor holds ~38-40 degC).
#include "nexus_figure.h"

int main() {
  mobitherm::bench::temperature_figure(
      "Figure 5", "amazon",
      /*paper_peak_without_c=*/41.0, /*paper_peak_with_c=*/39.0);
  return 0;
}
