// Shared output helpers for the figure/table reproduction binaries, plus an
// opt-in allocation-counting harness for the microbenchmarks.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

// Define MOBITHERM_BENCH_COUNT_ALLOCS before including this header (from
// exactly one translation unit per binary) to replace the global operator
// new/delete with counting versions. The counters let microbenchmarks report
// allocations per iteration and assert that warmed-up hot paths are
// allocation-free (cf. Marcu et al.: the measurement harness must be cheap
// enough not to perturb what it measures).
#ifdef MOBITHERM_BENCH_COUNT_ALLOCS

#include <atomic>
#include <cstdlib>
#include <new>

namespace mobitherm::bench {

inline std::atomic<std::size_t> g_alloc_count{0};

/// Total number of operator-new calls since process start.
inline std::size_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

/// Counts allocations between construction and count().
class AllocationScope {
 public:
  AllocationScope() : start_(alloc_count()) {}
  std::size_t count() const { return alloc_count() - start_; }

 private:
  std::size_t start_;
};

}  // namespace mobitherm::bench

inline void* mobitherm_counting_alloc(std::size_t size) {
  mobitherm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

inline void* mobitherm_counting_alloc(std::size_t size,
                                      std::align_val_t align) {
  mobitherm::bench::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return mobitherm_counting_alloc(size); }
void* operator new[](std::size_t size) {
  return mobitherm_counting_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return mobitherm_counting_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return mobitherm_counting_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // MOBITHERM_BENCH_COUNT_ALLOCS

namespace mobitherm::bench {

inline void header(const std::string& experiment, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("Paper: Bhat, Gumussoy, Ogras, \"Power and Thermal Analysis of\n");
  std::printf("Commercial Mobile Platforms\", DATE 2019. Shape reproduction on\n");
  std::printf("the mobitherm simulator; absolute values are not expected to\n");
  std::printf("match the authors' hardware testbed.\n");
  std::printf("================================================================\n");
}

/// Print a (time, series...) block that regenerates a line plot.
inline void series_block(
    const std::string& title, const std::vector<std::string>& columns,
    const std::vector<std::vector<double>>& rows) {
  std::printf("\n-- %s --\n", title.c_str());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%.3f", i == 0 ? "" : ",", row[i]);
    }
    std::printf("\n");
  }
}

/// Print a residency histogram like Figs. 2/4/6.
inline void residency_block(const std::string& title,
                            const std::vector<double>& freqs_mhz,
                            const std::vector<double>& fraction) {
  std::printf("\n-- %s --\n", title.c_str());
  std::printf("%-12s %s\n", "freq (MHz)", "time share");
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    std::printf("%-12.1f %5.1f%%  ", freqs_mhz[i], 100.0 * fraction[i]);
    const int bars = static_cast<int>(fraction[i] * 50.0 + 0.5);
    for (int b = 0; b < bars; ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }
}

inline void paper_vs_measured(const std::string& metric, double paper,
                              double measured, const char* unit) {
  std::printf("%-44s paper %7.2f %-6s measured %7.2f %s\n", metric.c_str(),
              paper, unit, measured, unit);
}

}  // namespace mobitherm::bench
