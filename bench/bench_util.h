// Shared output helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mobitherm::bench {

inline void header(const std::string& experiment, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), what.c_str());
  std::printf("Paper: Bhat, Gumussoy, Ogras, \"Power and Thermal Analysis of\n");
  std::printf("Commercial Mobile Platforms\", DATE 2019. Shape reproduction on\n");
  std::printf("the mobitherm simulator; absolute values are not expected to\n");
  std::printf("match the authors' hardware testbed.\n");
  std::printf("================================================================\n");
}

/// Print a (time, series...) block that regenerates a line plot.
inline void series_block(
    const std::string& title, const std::vector<std::string>& columns,
    const std::vector<std::vector<double>>& rows) {
  std::printf("\n-- %s --\n", title.c_str());
  for (std::size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",", columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%.3f", i == 0 ? "" : ",", row[i]);
    }
    std::printf("\n");
  }
}

/// Print a residency histogram like Figs. 2/4/6.
inline void residency_block(const std::string& title,
                            const std::vector<double>& freqs_mhz,
                            const std::vector<double>& fraction) {
  std::printf("\n-- %s --\n", title.c_str());
  std::printf("%-12s %s\n", "freq (MHz)", "time share");
  for (std::size_t i = 0; i < freqs_mhz.size(); ++i) {
    std::printf("%-12.1f %5.1f%%  ", freqs_mhz[i], 100.0 * fraction[i]);
    const int bars = static_cast<int>(fraction[i] * 50.0 + 0.5);
    for (int b = 0; b < bars; ++b) {
      std::printf("#");
    }
    std::printf("\n");
  }
}

inline void paper_vs_measured(const std::string& metric, double paper,
                              double measured, const char* unit) {
  std::printf("%-44s paper %7.2f %-6s measured %7.2f %s\n", metric.c_str(),
              paper, unit, measured, unit);
}

}  // namespace mobitherm::bench
