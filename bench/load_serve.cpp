// Socket front-end load generator: many concurrent pipelined connections
// driving a sharded in-process NetServer with a Zipf-distributed request
// mix, reporting end-to-end latency percentiles (p50/p95/p99), saturation
// throughput and per-shard cache hit rates.
//
// The pinned invariant, asserted in main() before the benchmarks run: on
// loopback with a cache-warm Zipf mix the server must sustain at least
// 5,000 requests/second. The timed phase is submit-only over previously
// warmed keys — every request is a cache probe plus response splice, which
// is exactly the service's steady state when a fleet of clients re-runs a
// shared scenario mix — so the number measures the front end (epoll loop,
// line framing, shard routing, cache lookup), not simulation speed.
//
// The load loop is a single poll()-driven thread with a fixed per-
// connection pipeline window: with C connections x W window there are
// C*W requests in flight at all times (thousands for the headline run).
// Latency is measured per request from the moment it is queued on a
// connection to the moment its response line is parsed off that
// connection — responses come back in order per connection, so a FIFO of
// send timestamps per connection is enough.
//
// All randomness is deterministic: key picks come from splitmix64 over a
// (connection, sequence) counter mapped through the Zipf CDF, so every
// run issues the identical request stream.
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "service/json.h"
#include "service/net_server.h"
#include "service/scenario_registry.h"
#include "service/server.h"
#include "service/service.h"
#include "service/shard.h"
#include "util/hash.h"

namespace {

using namespace mobitherm;
using clock_type = std::chrono::steady_clock;

constexpr unsigned kShards = 4;
constexpr std::size_t kDistinctKeys = 32;
constexpr double kZipfExponent = 0.99;

service::ServiceConfig serve_config() {
  service::ServiceConfig cfg;
  cfg.workers = 1;           // per shard
  cfg.queue_capacity = 64;   // per shard
  cfg.cache_capacity = 64;   // per shard: the whole key set stays resident
  return cfg;
}

/// The K distinct request lines of the mix (seed varies the canonical
/// key, so the keys spread across shards by the routing hash).
std::vector<std::string> request_lines() {
  std::vector<std::string> lines;
  lines.reserve(kDistinctKeys);
  for (std::size_t k = 0; k < kDistinctKeys; ++k) {
    lines.push_back(
        "{\"op\":\"submit\",\"scenario\":\"nexus\",\"duration_s\":2,"
        "\"seed\":" +
        std::to_string(k) + "}");
  }
  return lines;
}

/// Zipf CDF over kDistinctKeys ranks: weight(i) = 1/(i+1)^s.
std::vector<double> zipf_cdf() {
  std::vector<double> cdf(kDistinctKeys);
  double total = 0.0;
  for (std::size_t i = 0; i < kDistinctKeys; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), kZipfExponent);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

std::size_t zipf_pick(const std::vector<double>& cdf, std::uint64_t counter) {
  const double u = util::hash_to_unit(util::splitmix64(counter));
  return static_cast<std::size_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

/// Server + backend bundle, listening on an ephemeral loopback port with
/// its event loop on a background thread.
struct ServeFixture {
  ServeFixture()
      : service(service::ScenarioRegistry::standard(), serve_config(),
                kShards),
        server(service),
        net(server),
        thread([this] { net.run(); }) {}
  ~ServeFixture() {
    net.stop();
    thread.join();
  }

  service::ShardedService service;
  service::SimServer server;
  service::NetServer net;
  std::thread thread;
};

int connect_loopback(int port, bool nonblocking = false) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::fprintf(stderr, "load_serve: connect failed: %s\n",
                 std::strerror(errno));
    std::abort();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (nonblocking) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  }
  return fd;
}

/// Blocking single-request helper for warmup and stats (its own
/// connection, closed on destruction).
class ControlClient {
 public:
  explicit ControlClient(int port) : fd_(connect_loopback(port)) {}
  ~ControlClient() { ::close(fd_); }

  std::string request(const std::string& line) {
    std::string out = line + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::send(fd_, out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) std::abort();
      off += static_cast<std::size_t>(n);
    }
    while (buf_.find('\n') == std::string::npos) {
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) std::abort();
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
    const std::size_t nl = buf_.find('\n');
    std::string line_out = buf_.substr(0, nl);
    buf_.erase(0, nl + 1);
    return line_out;
  }

 private:
  int fd_;
  std::string buf_;
};

/// Run every distinct key to completion once so the timed phase is pure
/// cache hits.
void warm_cache(int port, const std::vector<std::string>& lines) {
  ControlClient control(port);
  for (const std::string& line : lines) {
    const service::json::Value submit =
        service::json::Value::parse(control.request(line));
    if (!submit.find("ok")->as_bool()) {
      std::fprintf(stderr, "load_serve: warmup submit rejected\n");
      std::abort();
    }
    const auto job =
        static_cast<std::uint64_t>(submit.find("job")->as_number());
    const service::json::Value wait = service::json::Value::parse(
        control.request("{\"op\":\"wait\",\"job\":" + std::to_string(job) +
                        ",\"timeout_s\":600}"));
    if (!wait.find("done")->as_bool()) {
      std::fprintf(stderr, "load_serve: warmup job never finished\n");
      std::abort();
    }
  }
}

struct LoadResult {
  double elapsed_s = 0.0;
  double req_per_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;  // over the timed phase, from shard stats deltas
  std::size_t responses = 0;
  std::vector<double> shard_hit_rates;  // lifetime hits/(hits+misses)
};

struct LoadConn {
  int fd = -1;
  std::string in;
  std::string out;
  std::deque<clock_type::time_point> sent;  // FIFO of in-flight send times
  std::size_t to_send = 0;                  // requests not yet queued
  std::uint64_t counter = 0;                // Zipf sequence counter
};

std::vector<std::size_t> cache_counts(const service::json::Value& stats) {
  std::vector<std::size_t> counts;  // hits, misses per shard, flattened
  for (const service::json::Value& s : stats.find("shards")->items()) {
    const service::json::Value* cache = s.find("cache");
    counts.push_back(
        static_cast<std::size_t>(cache->find("hits")->as_number()));
    counts.push_back(
        static_cast<std::size_t>(cache->find("misses")->as_number()));
  }
  return counts;
}

/// The pipelined load loop: `connections` sockets, each keeping `window`
/// requests in flight, `per_conn` requests per connection in total.
LoadResult run_load(int port, std::size_t connections, std::size_t window,
                    std::size_t per_conn) {
  const std::vector<std::string> lines = request_lines();
  const std::vector<double> cdf = zipf_cdf();

  ControlClient control(port);
  const std::vector<std::size_t> before =
      cache_counts(service::json::Value::parse(
          control.request("{\"op\":\"stats\"}")));

  std::vector<LoadConn> conns(connections);
  std::vector<pollfd> fds(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    conns[c].fd = fds[c].fd = connect_loopback(port, /*nonblocking=*/true);
    conns[c].to_send = per_conn;
    // Distinct counter streams per connection keep the pick sequence
    // deterministic and non-overlapping.
    conns[c].counter = static_cast<std::uint64_t>(c) * 0x9e3779b97f4a7c15ULL;
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(connections * per_conn);
  const std::size_t total = connections * per_conn;
  std::size_t responses = 0;

  const auto t0 = clock_type::now();
  while (responses < total) {
    for (std::size_t c = 0; c < connections; ++c) {
      LoadConn& conn = conns[c];
      // Top up the pipeline window with freshly picked Zipf keys.
      while (conn.to_send > 0 && conn.sent.size() < window) {
        const std::size_t key = zipf_pick(cdf, conn.counter++);
        conn.out += lines[key];
        conn.out += '\n';
        conn.sent.push_back(clock_type::now());
        --conn.to_send;
      }
      fds[c].events = static_cast<short>(
          POLLIN | (conn.out.empty() ? 0 : POLLOUT));
    }
    if (::poll(fds.data(), fds.size(), 1000) < 0) {
      if (errno == EINTR) continue;
      std::abort();
    }
    for (std::size_t c = 0; c < connections; ++c) {
      LoadConn& conn = conns[c];
      if (fds[c].revents & POLLOUT) {
        while (!conn.out.empty()) {
          const ssize_t n = ::send(conn.fd, conn.out.data(),
                                   conn.out.size(), MSG_NOSIGNAL);
          if (n <= 0) break;  // EAGAIN: kernel buffer full, poll again
          conn.out.erase(0, static_cast<std::size_t>(n));
        }
      }
      if (fds[c].revents & (POLLIN | POLLHUP)) {
        char chunk[64 * 1024];
        while (true) {
          const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
          if (n <= 0) break;
          conn.in.append(chunk, static_cast<std::size_t>(n));
        }
        std::size_t start = 0;
        while (true) {
          const std::size_t nl = conn.in.find('\n', start);
          if (nl == std::string::npos) break;
          const auto now = clock_type::now();
          latencies_us.push_back(
              std::chrono::duration<double, std::micro>(
                  now - conn.sent.front())
                  .count());
          conn.sent.pop_front();
          ++responses;
          start = nl + 1;
        }
        conn.in.erase(0, start);
      }
    }
  }
  const auto t1 = clock_type::now();
  for (LoadConn& conn : conns) ::close(conn.fd);

  const std::vector<std::size_t> after =
      cache_counts(service::json::Value::parse(
          control.request("{\"op\":\"stats\"}")));

  LoadResult result;
  result.responses = responses;
  result.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  result.req_per_s =
      result.elapsed_s > 0.0 ? responses / result.elapsed_s : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  };
  result.p50_us = percentile(0.50);
  result.p95_us = percentile(0.95);
  result.p99_us = percentile(0.99);

  std::size_t hits_delta = 0, lookups_delta = 0;
  for (std::size_t i = 0; i + 1 < after.size(); i += 2) {
    hits_delta += after[i] - before[i];
    lookups_delta += (after[i] - before[i]) + (after[i + 1] - before[i + 1]);
    const double lifetime = static_cast<double>(after[i] + after[i + 1]);
    result.shard_hit_rates.push_back(
        lifetime > 0.0 ? after[i] / lifetime : 0.0);
  }
  result.hit_rate = lookups_delta > 0
                        ? static_cast<double>(hits_delta) / lookups_delta
                        : 0.0;
  return result;
}

void report(const char* tag, const LoadResult& r) {
  std::printf(
      "%s: %zu responses in %.3f s -> %.0f req/s | latency p50 %.1f us "
      "p95 %.1f us p99 %.1f us | timed-phase hit rate %.3f\n",
      tag, r.responses, r.elapsed_s, r.req_per_s, r.p50_us, r.p95_us,
      r.p99_us, r.hit_rate);
  std::printf("%s: per-shard lifetime hit rates:", tag);
  for (std::size_t s = 0; s < r.shard_hit_rates.size(); ++s) {
    std::printf(" shard%zu=%.3f", s, r.shard_hit_rates[s]);
  }
  std::printf("\n");
}

/// The pinned invariant: the cache-warm Zipf mix sustains >= 5,000 req/s
/// on loopback, with every request answered.
bool check_saturation_throughput() {
  ServeFixture fixture;
  warm_cache(fixture.net.port(), request_lines());
  // 8 connections x 256 in flight = 2048 requests pipelined at all times.
  const LoadResult r =
      run_load(fixture.net.port(), /*connections=*/8, /*window=*/256,
               /*per_conn=*/2500);
  report("load_serve", r);
  if (r.responses != 8 * 2500) {
    std::fprintf(stderr, "load_serve: dropped %zu responses\n",
                 8 * 2500 - r.responses);
    return false;
  }
  if (r.hit_rate < 0.999) {
    std::fprintf(stderr,
                 "load_serve: timed phase was not cache-warm (hit rate "
                 "%.3f)\n",
                 r.hit_rate);
    return false;
  }
  if (r.req_per_s < 5000.0) {
    std::fprintf(stderr,
                 "load_serve: %.0f req/s is below the pinned 5000 req/s "
                 "floor\n",
                 r.req_per_s);
    return false;
  }
  return true;
}

void BM_LoadServeZipf(benchmark::State& state) {
  ServeFixture fixture;
  warm_cache(fixture.net.port(), request_lines());
  LoadResult last;
  for (auto _ : state) {
    last = run_load(fixture.net.port(), /*connections=*/4, /*window=*/128,
                    /*per_conn=*/1000);
  }
  state.counters["req_per_s"] = last.req_per_s;
  state.counters["p50_us"] = last.p50_us;
  state.counters["p95_us"] = last.p95_us;
  state.counters["p99_us"] = last.p99_us;
  state.counters["hit_rate"] = last.hit_rate;
}
BENCHMARK(BM_LoadServeZipf)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  if (!check_saturation_throughput()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
