// Microbenchmarks for the best-arm comparison subsystem, plus the two
// invariants this PR pins, asserted in main() before the benchmarks run so
// a regression fails the bench-smoke job loudly instead of just shifting
// numbers:
//
//   1. Early stopping earns its keep: on a clearly separated pair the
//      comparison must consume <= half the per-arm seed budget that a
//      fixed-budget sweep would burn (>= 2x seed savings).
//   2. A repeated comparison is served from the verdict cache at least
//      10x faster than the cold run, byte-identically.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "service/scenario_registry.h"
#include "service/service.h"
#include "sim/compare.h"
#include "sim/montecarlo.h"
#include "util/rng.h"

namespace {

using namespace mobitherm;

service::ServiceConfig quick_config() {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.cache_capacity = 128;
  return cfg;
}

// Odroid IPA vs. app-aware governor with BML: a ~15 degC peak-temperature
// gap against ~0.01 degC of seed noise — separated at the minimum sample
// count, so early stopping has the most budget to save.
service::CompareRequest odroid_compare(int max_seeds, int min_seeds) {
  service::CompareRequest request;
  service::CompareArmRequest ipa;
  ipa.request.scenario = "odroid";
  ipa.request.policy = "default";
  ipa.request.with_bml = true;
  ipa.request.duration_s = 60.0;
  service::CompareArmRequest appaware = ipa;
  appaware.request.policy = "proposed";
  request.arms = {ipa, appaware};
  request.metric = "peak_temp_c";
  request.max_seeds = max_seeds;
  request.round_seeds = 2;
  request.min_seeds = min_seeds;
  return request;
}

/// Submit + wait; aborts on rejection so a misconfigured bench cannot
/// silently measure nothing. Returns the verdict payload.
std::string compare_and_wait(service::SimService& service,
                             const service::CompareRequest& request,
                             bool* cached = nullptr) {
  const service::SubmitOutcome out = service.submit_compare(request);
  if (!out.accepted || !service.wait(out.id, 600.0)) {
    std::fprintf(stderr, "micro_compare: submit_compare failed: %s\n",
                 out.reject_reason.c_str());
    std::abort();
  }
  if (cached != nullptr) {
    *cached = out.cached;
  }
  const auto result = service.result(out.id);
  if (!result) {
    std::fprintf(stderr, "micro_compare: compare job produced no result\n");
    std::abort();
  }
  return result->payload;
}

void BM_WelfordAccumulate(benchmark::State& state) {
  // One seed's worth of accumulator traffic: stream 1024 metric-like
  // values through mean/M2/min/max.
  std::vector<double> xs(1024);
  std::uint64_t seed = 9;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    seed = util::derive_seed(seed, i);
    xs[i] = 50.0 + static_cast<double>(seed % 1000) * 0.01;
  }
  for (auto _ : state) {
    sim::WelfordAccumulator acc;
    for (double x : xs) {
      acc.add(x);
    }
    benchmark::DoNotOptimize(acc.mean());
    benchmark::DoNotOptimize(acc.variance());
  }
}
BENCHMARK(BM_WelfordAccumulate);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.5000001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::normal_quantile(p));
    p += 1e-7;
    if (p >= 0.9999) {
      p = 0.5000001;
    }
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_DecideBestArm(benchmark::State& state) {
  // Eight arms, 32 samples each: the per-round decision at full budget.
  std::vector<sim::WelfordAccumulator> arms(8);
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (int i = 0; i < 32; ++i) {
      arms[a].add(60.0 + static_cast<double>(a) * 0.5 +
                  0.01 * static_cast<double>(i % 7));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::decide_best_arm(arms, 0.95, true));
  }
}
BENCHMARK(BM_DecideBestArm);

void BM_CompareCacheHit(benchmark::State& state) {
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  const service::CompareRequest request = odroid_compare(8, 2);
  compare_and_wait(service, request);  // warm the verdict cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare_and_wait(service, request));
  }
}
BENCHMARK(BM_CompareCacheHit)->Unit(benchmark::kMicrosecond);

/// Invariant 1: on the separated Odroid pair, the adaptive comparison
/// stops at min_seeds while the fixed-budget run burns max_seeds — a
/// >= 2x per-arm seed saving (and the two verdicts agree on the winner).
bool check_early_stop_savings() {
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  const int budget = 8;
  const std::string adaptive =
      compare_and_wait(service, odroid_compare(budget, 2));
  // Fixed budget modeled as min_seeds == max_seeds: no early decision.
  const std::string fixed =
      compare_and_wait(service, odroid_compare(budget, budget));

  const auto seeds_of = [](const std::string& payload) {
    const std::string key = "\"seeds_per_arm\":";
    const std::size_t at = payload.find(key);
    return at == std::string::npos
               ? -1
               : std::atoi(payload.c_str() + at + key.size());
  };
  const int adaptive_seeds = seeds_of(adaptive);
  const int fixed_seeds = seeds_of(fixed);
  std::printf("early stop: %d seeds/arm adaptive vs %d fixed (%.1fx saved)\n",
              adaptive_seeds, fixed_seeds,
              adaptive_seeds > 0
                  ? static_cast<double>(fixed_seeds) / adaptive_seeds
                  : 0.0);
  if (adaptive_seeds <= 0 || fixed_seeds != budget ||
      fixed_seeds < 2 * adaptive_seeds) {
    std::fprintf(stderr,
                 "micro_compare: early stopping saved < 2x seeds "
                 "(%d adaptive vs %d fixed)\n",
                 adaptive_seeds, fixed_seeds);
    return false;
  }
  const std::string winner = "\"winner\":\"proposed+bml\"";
  if (adaptive.find(winner) == std::string::npos ||
      fixed.find(winner) == std::string::npos ||
      adaptive.find("\"separated\":true") == std::string::npos) {
    std::fprintf(stderr,
                 "micro_compare: adaptive and fixed verdicts disagree\n");
    return false;
  }
  return true;
}

/// Invariant 2: a repeated comparison is a verdict-cache hit — byte
/// identical and >= 10x faster than the cold run.
bool check_recompare_speedup() {
  using clock = std::chrono::steady_clock;
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  const service::CompareRequest request = odroid_compare(8, 2);

  const auto t0 = clock::now();
  const std::string cold = compare_and_wait(service, request);
  const auto t1 = clock::now();
  bool cached = false;
  const std::string warm = compare_and_wait(service, request, &cached);
  const auto t2 = clock::now();

  if (!cached) {
    std::fprintf(stderr,
                 "micro_compare: repeated comparison was not served from "
                 "the verdict cache\n");
    return false;
  }
  if (warm != cold) {
    std::fprintf(stderr,
                 "micro_compare: cached verdict is not byte-identical\n");
    return false;
  }
  const double cold_s = std::chrono::duration<double>(t1 - t0).count();
  const double hit_s = std::chrono::duration<double>(t2 - t1).count();
  const double speedup = hit_s > 0.0 ? cold_s / hit_s : 1e9;
  std::printf("re-compare speedup: %.0fx (cold %.3f s, hit %.6f s)\n",
              speedup, cold_s, hit_s);
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "micro_compare: re-compare speedup %.1fx < required 10x\n",
                 speedup);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!check_early_stop_savings() || !check_recompare_speedup()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
