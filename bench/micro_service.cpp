// Microbenchmarks for the simulation service layer, plus the cache-hit
// invariant the issue tracker pins: a repeated identical request must be
// served from the result cache byte-identically and at least 10x faster
// than the cold simulation. The invariant is asserted in main() before the
// benchmarks run, so a broken cache fails the bench-smoke job loudly
// instead of just shifting numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "service/scenario_registry.h"
#include "service/server.h"
#include "service/service.h"

namespace {

using namespace mobitherm;

service::ServiceConfig quick_config() {
  service::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 64;
  cfg.cache_capacity = 8;
  return cfg;
}

// A short Nexus run: long enough that a cold simulation dwarfs the cache
// bookkeeping, short enough to keep the bench quick.
service::SimRequest quick_request(std::uint64_t seed) {
  service::SimRequest req;
  req.scenario = "nexus";
  req.app = "paperio";
  req.duration_s = 10.0;
  req.seed = seed;
  return req;
}

/// Submit + wait; returns the job id. Aborts the process on rejection so a
/// misconfigured bench cannot silently measure nothing.
std::uint64_t submit_and_wait(service::SimService& service,
                              const service::SimRequest& req) {
  const service::SubmitOutcome out = service.submit(req);
  if (!out.accepted || !service.wait(out.id, 600.0)) {
    std::fprintf(stderr, "micro_service: submit failed: %s\n",
                 out.reject_reason.c_str());
    std::abort();
  }
  return out.id;
}

void BM_ServiceColdMiss(benchmark::State& state) {
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  std::uint64_t seed = 1000;  // fresh seed per iteration: every run misses
  for (auto _ : state) {
    benchmark::DoNotOptimize(submit_and_wait(service, quick_request(seed++)));
  }
}
BENCHMARK(BM_ServiceColdMiss)->Unit(benchmark::kMillisecond);

void BM_ServiceCacheHit(benchmark::State& state) {
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  const service::SimRequest req = quick_request(42);
  submit_and_wait(service, req);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(submit_and_wait(service, req));
  }
}
BENCHMARK(BM_ServiceCacheHit)->Unit(benchmark::kMicrosecond);

void BM_CanonicalKey(benchmark::State& state) {
  const service::ScenarioRegistry& registry = service::standard_registry();
  const service::SimRequest req = quick_request(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.canonical_key(req));
  }
}
BENCHMARK(BM_CanonicalKey);

void BM_ServerStatsOp(benchmark::State& state) {
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  service::SimServer server(service);
  const std::string line = "{\"op\":\"stats\"}";
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(line));
  }
}
BENCHMARK(BM_ServerStatsOp);

/// The pinned invariant: second identical submit is a cache hit, its
/// payload is byte-identical, and it resolves >= 10x faster than the cold
/// run. Returns true on success.
bool check_cache_speedup() {
  using clock = std::chrono::steady_clock;
  service::SimService service(service::ScenarioRegistry::standard(),
                              quick_config());
  const service::SimRequest req = quick_request(42);

  const auto t0 = clock::now();
  const std::uint64_t cold_id = submit_and_wait(service, req);
  const auto t1 = clock::now();
  const service::SubmitOutcome hit = service.submit(req);
  if (!hit.accepted || !service.wait(hit.id, 600.0)) {
    std::fprintf(stderr, "micro_service: cache-hit submit failed\n");
    return false;
  }
  const auto t2 = clock::now();

  if (!hit.cached) {
    std::fprintf(stderr,
                 "micro_service: repeated submit was not served from "
                 "cache\n");
    return false;
  }
  const auto cold = service.result(cold_id);
  const auto warm = service.result(hit.id);
  if (!cold || !warm || cold->payload != warm->payload) {
    std::fprintf(stderr,
                 "micro_service: cached payload is not byte-identical\n");
    return false;
  }
  const double cold_s = std::chrono::duration<double>(t1 - t0).count();
  const double hit_s = std::chrono::duration<double>(t2 - t1).count();
  const double speedup = hit_s > 0.0 ? cold_s / hit_s : 1e9;
  std::printf("cache-hit speedup: %.0fx (cold %.3f s, hit %.6f s)\n",
              speedup, cold_s, hit_s);
  if (speedup < 10.0) {
    std::fprintf(stderr,
                 "micro_service: cache-hit speedup %.1fx < required 10x\n",
                 speedup);
    return false;
  }
  const service::ServiceStats stats = service.stats();
  if (stats.cache.hits != 1) {
    std::fprintf(stderr, "micro_service: expected 1 cache hit, got %zu\n",
                 stats.cache.hits);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!check_cache_speedup()) {
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
