// Policy comparison on the 3DMark + BML scenario: what each thermal
// management strategy trades off. Rows report foreground GT1 fps, peak
// temperature, background progress, and the governor-contradiction time
// (paper Sec. I) on the big cluster.
//
// Policies: none, step_wise (uniform 85 degC trips), IPA (kernel default),
// emergency hotplug, proposed (paper), proposed + budget shedding,
// proposed + migrate-back.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/appaware.h"
#include "governors/hotplug.h"
#include "governors/thermal.h"
#include "platform/presets.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "stability/presets.h"
#include "thermal/presets.h"
#include "util/units.h"
#include "workload/presets.h"

namespace {

using namespace mobitherm;

enum class Policy {
  kNone,
  kStepWise,
  kIpa,
  kHotplug,
  kProposed,
  kProposedShed,
  kProposedMigrateBack
};

struct Row {
  double gt1_fps;
  double peak_c;
  double bml_work;
  double conflict_s;
  std::size_t migrations;
};

Row run(Policy policy) {
  const platform::SocSpec spec = platform::exynos5422();
  const stability::Params params = stability::odroid_xu3_params();
  sim::Engine engine(spec, thermal::odroidxu3_network(),
                     power::LeakageParams{params.leak_theta_k,
                                          params.leak_a_w_per_k2},
                     0.25);
  engine.set_initial_temperature(util::celsius_to_kelvin(50.0));

  switch (policy) {
    case Policy::kNone:
      break;
    case Policy::kStepWise:
      engine.set_thermal_governor(
          std::make_unique<governors::StepWiseGovernor>(
              spec, governors::StepWiseGovernor::uniform(
                        spec, util::celsius(85.0))));
      break;
    case Policy::kIpa:
      engine.set_thermal_governor(std::make_unique<governors::IpaGovernor>(
          spec, sim::odroid_ipa_config(spec)));
      break;
    case Policy::kHotplug: {
      governors::HotplugGovernor::Config cfg;
      cfg.cluster = spec.big();
      cfg.trip_k = util::celsius(85.0);
      engine.set_hotplug_governor(
          std::make_unique<governors::HotplugGovernor>(spec, cfg));
      break;
    }
    case Policy::kProposed:
    case Policy::kProposedShed:
    case Policy::kProposedMigrateBack: {
      core::AppAwareConfig cfg = sim::odroid_appaware_config(spec);
      cfg.shed_until_safe = policy == Policy::kProposedShed;
      cfg.migrate_back = policy == Policy::kProposedMigrateBack;
      engine.set_appaware_governor(
          std::make_unique<core::AppAwareGovernor>(cfg, params));
      break;
    }
  }

  const std::size_t fg = engine.add_app(workload::threedmark());
  const std::size_t bg = engine.add_app(workload::bml());
  engine.run(250.0);

  Row row;
  const workload::AppInstance& app = engine.app(fg);
  double sum = 0.0;
  int count = 0;
  for (std::size_t sec = 0; sec < app.fps_samples().size(); ++sec) {
    if (app.phase_index_at(sec + 0.5) == 0) {
      sum += app.fps_samples()[sec];
      ++count;
    }
  }
  row.gt1_fps = count > 0 ? sum / count : 0.0;
  double peak = 0.0;
  for (const sim::TracePoint& p : engine.trace().points()) {
    peak = std::max(peak, p.max_chip_temp_k - 273.15);
  }
  row.peak_c = peak;
  row.bml_work =
      engine.scheduler().process(engine.app(bg).cpu_pid()).completed_work();
  row.conflict_s = engine.conflict_time_s(spec.big()) +
                   engine.conflict_time_s(spec.gpu());
  row.migrations = 0;
  for (const auto& [t, d] : engine.decisions()) {
    row.migrations += d.all_migrated.size();
  }
  return row;
}

void print(const char* label, const Row& r) {
  std::printf("%-26s GT1 %6.1f fps  peak %5.1f degC  BML %9.3g  "
              "conflict %6.1f s  migrations %zu\n",
              label, r.gt1_fps, r.peak_c, r.bml_work, r.conflict_s,
              r.migrations);
}

}  // namespace

int main() {
  bench::header("Policy ablation",
                "thermal-management strategies on 3DMark + BML (250 s)");
  std::printf("\n");
  print("no thermal management", run(Policy::kNone));
  print("step_wise (85 degC trips)", run(Policy::kStepWise));
  print("IPA (kernel default)", run(Policy::kIpa));
  print("emergency hotplug", run(Policy::kHotplug));
  print("proposed (paper)", run(Policy::kProposed));
  print("proposed + budget shed", run(Policy::kProposedShed));
  print("proposed + migrate-back", run(Policy::kProposedMigrateBack));
  std::printf(
      "\nReading: system-wide policies (step_wise/IPA) protect temperature\n"
      "by throttling everything — the foreground fps drops and the thermal\n"
      "cap contradicts the frequency governor for most of the run. The\n"
      "proposed governor penalizes only the background hog: foreground fps\n"
      "matches the no-management run at a far lower temperature, with zero\n"
      "governor contradictions.\n");
  return 0;
}
