// Batch-runner microbenchmark: a 16-seed Nexus sweep (Table I confidence
// methodology) executed serially and through the parallel batch runner.
// Prints per-path wall clock, the speedup, and verifies that the parallel
// statistics are bit-identical to the serial ones — the property that makes
// the parallel path a drop-in replacement for across_seeds().
//
// Usage: micro_batch [seeds] [duration_s] [threads]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "sim/batch.h"
#include "sim/experiment.h"
#include "sim/montecarlo.h"
#include "workload/presets.h"

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobitherm;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 16;
  const double duration_s = argc > 2 ? std::atof(argv[2]) : 20.0;
  const int threads_arg = argc > 3 ? std::atoi(argv[3]) : 4;
  if (seeds <= 0 || duration_s <= 0.0 || threads_arg < 0) {
    std::fprintf(stderr,
                 "usage: micro_batch [seeds>0] [duration_s>0] "
                 "[threads>=0, 0=hardware]\n");
    return 2;
  }
  const unsigned threads = static_cast<unsigned>(threads_arg);

  bench::header("micro_batch",
                "multi-seed Nexus sweep, serial vs. parallel batch runner");
  std::printf("\n%d seeds x %.0f s Paper.io on the Nexus 6P model; "
              "%u worker threads (hardware reports %u)\n",
              seeds, duration_s, threads,
              std::thread::hardware_concurrency());

  auto metric = [&](std::uint64_t seed) {
    sim::NexusRun run;
    run.app = workload::paperio();
    run.duration_s = duration_s;
    run.seed = seed;
    return sim::run_nexus_app(run).median_fps;
  };

  double t0 = now_s();
  const sim::SeedStats serial = sim::across_seeds(metric, seeds, 1, 1);
  const double serial_s = now_s() - t0;

  t0 = now_s();
  const sim::SeedStats parallel =
      sim::across_seeds(metric, seeds, 1, threads);
  const double parallel_s = now_s() - t0;

  std::printf("\n%-28s %8.2f s wall\n", "serial across_seeds", serial_s);
  std::printf("%-28s %8.2f s wall\n", "parallel batch runner", parallel_s);
  std::printf("%-28s %8.2fx\n", "speedup",
              parallel_s > 0.0 ? serial_s / parallel_s : 0.0);

  const bool identical = serial.mean == parallel.mean &&
                         serial.stddev == parallel.stddev &&
                         serial.min == parallel.min &&
                         serial.max == parallel.max &&
                         serial.n == parallel.n;
  std::printf("\nmedian fps: %.3f +- %.3f (min %.3f, max %.3f, n=%d)\n",
              serial.mean, serial.stddev, serial.min, serial.max, serial.n);
  std::printf("serial vs parallel statistics: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  // Full per-run records through the scenario-factory API.
  sim::BatchOptions opts;
  opts.threads = threads;
  const auto records = sim::BatchRunner(opts).run(
      static_cast<std::size_t>(seeds), 1, duration_s,
      [&](std::size_t, std::uint64_t seed) {
        sim::NexusRun run;
        run.app = workload::paperio();
        run.duration_s = duration_s;
        run.seed = seed;
        return sim::make_nexus_engine(run);
      });
  double fastest = records.front().wall_s;
  double slowest = records.front().wall_s;
  for (const sim::BatchRecord& r : records) {
    fastest = std::min(fastest, r.wall_s);
    slowest = std::max(slowest, r.wall_s);
  }
  std::printf("\nper-run records: %zu; per-run wall %.2f..%.2f s; "
              "run 0 peak %.1f degC, median %.1f fps\n",
              records.size(), fastest, slowest,
              records.front().metrics.peak_temp_c,
              records.front().metrics.median_fps.front());

  return identical ? 0 : 1;
}
