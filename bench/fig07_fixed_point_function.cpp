// Fig. 7: the fixed-point function of the auxiliary temperature at three
// power levels on the Odroid-XU3 parameters:
//   (a) 2.0 W — two roots (stable + unstable fixed point),
//   (b) 5.5 W — critically stable (roots merged),
//   (c) 8.0 W — no fixed points (thermal runaway).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "stability/fixed_point.h"
#include "stability/presets.h"

int main() {
  using namespace mobitherm;
  bench::header("Figure 7",
                "fixed-point function at 2 / 5.5 / 8 W (Odroid-XU3 params)");

  const stability::Params p = stability::odroid_xu3_params();
  std::printf("\ncalibrated parameters: G=%.4f W/K  A=%.4e W/K^2  "
              "theta=%.1f K  T_amb=%.2f K\n",
              p.g_w_per_k, p.leak_a_w_per_k2, p.leak_theta_k, p.t_ambient_k);
  std::printf("critical power: paper 5.50 W, measured %.3f W\n",
              stability::critical_power(p));

  const std::vector<double> powers = {2.0, 5.5, 8.0};
  // The curve itself, sampled over the auxiliary-temperature range of the
  // paper's plots; scaled by 1e4 for readability (the paper's y-axis is in
  // arbitrary units of the same shape).
  std::vector<std::vector<double>> rows;
  for (double x = 1.5; x <= 6.5; x += 0.1) {
    std::vector<double> row = {x};
    for (double power : powers) {
      row.push_back(1e4 * stability::fixed_point_function(p, power, x));
    }
    rows.push_back(row);
  }
  bench::series_block(
      "fixed-point function f(x) (x = theta/T; values x 1e4)",
      {"aux_temp", "P=2.0W", "P=5.5W", "P=8.0W"}, rows);

  std::printf("\n");
  for (double power : powers) {
    const stability::FixedPointResult r = stability::analyze(p, power, 1e-5);
    std::printf("P = %.1f W: %-18s", power, to_string(r.cls));
    if (r.num_fixed_points >= 1) {
      std::printf(" stable fixed point x=%.3f (T=%.1f degC)", r.stable_x,
                  r.stable_temp_k - 273.15);
    }
    if (r.num_fixed_points == 2) {
      std::printf(", unstable x=%.3f (T=%.1f degC)", r.unstable_x,
                  r.unstable_temp_k - 273.15);
    }
    std::printf("\n");
  }
  // The arrows in Fig. 7: fixed-point iterates move right where f > 0
  // (between the roots) and left where f < 0.
  const stability::FixedPointResult two_w = stability::analyze(p, 2.0);
  std::printf("\n-- fixed-point iteration at 2 W (the figure's arrows) --\n");
  for (double x0 : {0.5 * (two_w.unstable_x + two_w.stable_x),
                    two_w.stable_x + 1.0, 0.9 * two_w.unstable_x}) {
    const auto xs = stability::iterate_auxiliary(p, 2.0, x0, 2000);
    std::printf("from x=%.3f:", x0);
    for (std::size_t i = 0; i < xs.size();
         i += std::max<std::size_t>(1, xs.size() / 6)) {
      std::printf(" %.3f", xs[i]);
    }
    std::printf(" -> %.3f (%s)\n", xs.back(),
                std::abs(xs.back() - two_w.stable_x) < 0.01
                    ? "stable fixed point"
                    : "runaway");
  }

  std::printf("\nPaper shape: two roots at 2 W, roots merge at exactly\n"
              "5.5 W, no roots at 8 W; the larger auxiliary root (lower\n"
              "temperature) is the stable fixed point.\n");
  return 0;
}
