// Shared scaffolding for the Nexus 6P figures (Figs. 1-6): each figure is
// one app run twice (throttling disabled / enabled), reported either as a
// temperature trace or as a frequency-residency histogram.
#pragma once

#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/batch.h"
#include "sim/experiment.h"
#include "workload/app.h"

namespace mobitherm::bench {

struct NexusPair {
  sim::NexusResult without_throttling;
  sim::NexusResult with_throttling;
};

/// The two runs are independent engines, so they fan across the batch
/// pool (worker count bounded by the hardware).
inline NexusPair run_pair(const workload::AppSpec& app,
                          double duration_s = 140.0) {
  NexusPair pair;
  sim::NexusResult* out[2] = {&pair.without_throttling,
                              &pair.with_throttling};
  sim::parallel_for_index(2, 2, [&](std::size_t i) {
    sim::NexusRun run;
    run.app = app;
    run.duration_s = duration_s;
    run.throttling = i == 1;
    *out[i] = sim::run_nexus_app(run);
  });
  return pair;
}

/// Figs. 1/3/5: package-temperature trace with and without throttling.
inline void temperature_figure(const std::string& figure,
                               const workload::AppSpec& app,
                               double paper_peak_without_c,
                               double paper_peak_with_c) {
  header(figure, "temperature profile for " + app.name +
                     " (with vs. without throttling)");
  const NexusPair pair = run_pair(app);

  std::vector<std::vector<double>> rows;
  const auto& off = pair.without_throttling.temp_trace_c;
  const auto& on = pair.with_throttling.temp_trace_c;
  for (std::size_t i = 0; i < off.size() && i < on.size(); ++i) {
    rows.push_back({off[i].first, off[i].second, on[i].second});
  }
  series_block("temperature trace (plot this to regenerate the figure)",
               {"time_s", "without_throttling_c", "with_throttling_c"}, rows);

  std::printf("\n");
  paper_vs_measured("peak temperature, throttling disabled",
                    paper_peak_without_c,
                    pair.without_throttling.peak_temp_c, "degC");
  paper_vs_measured("peak temperature, throttling enabled",
                    paper_peak_with_c, pair.with_throttling.peak_temp_c,
                    "degC");
}

/// Figs. 2/4/6: frequency-residency histograms for one cluster.
inline void residency_figure(const std::string& figure,
                             const workload::AppSpec& app, bool gpu_cluster,
                             const std::string& cluster_label) {
  header(figure, cluster_label + " frequency residency for " + app.name);
  const NexusPair pair = run_pair(app);

  const auto& freqs = gpu_cluster ? pair.without_throttling.gpu_freqs_mhz
                                  : pair.without_throttling.big_freqs_mhz;
  const auto& res_off = gpu_cluster ? pair.without_throttling.gpu_residency
                                    : pair.without_throttling.big_residency;
  const auto& res_on = gpu_cluster ? pair.with_throttling.gpu_residency
                                   : pair.with_throttling.big_residency;
  residency_block("without throttling", freqs, res_off);
  residency_block("with throttling", freqs, res_on);

  // Shape check the paper emphasizes: the top OPPs lose their share under
  // throttling.
  double top2_off = 0.0;
  double top2_on = 0.0;
  for (std::size_t i = freqs.size() >= 2 ? freqs.size() - 2 : 0;
       i < freqs.size(); ++i) {
    top2_off += res_off[i];
    top2_on += res_on[i];
  }
  std::printf("\ntop-two-OPP share: %.1f%% -> %.1f%% under throttling\n",
              100.0 * top2_off, 100.0 * top2_on);
}

}  // namespace mobitherm::bench
