// Shared scaffolding for the Nexus 6P figures (Figs. 1-6): each figure is
// one app run twice (throttling disabled / enabled), reported either as a
// temperature trace or as a frequency-residency histogram.
//
// Apps are named by their registry keys ("paperio", "stickman_hook", ...):
// the service-layer ScenarioRegistry is the single source of truth for the
// paper's workload wiring, and every pair here is exactly the engine the
// `nexus` scenario would build for the same request.
#pragma once

#include <string>
#include <vector>

#include "bench_util.h"
#include "service/scenario_registry.h"
#include "sim/batch.h"
#include "sim/experiment.h"

namespace mobitherm::bench {

struct NexusPair {
  sim::NexusResult without_throttling;
  sim::NexusResult with_throttling;
};

/// The two runs are independent engines, so they fan across the batch
/// pool (worker count bounded by the hardware).
inline NexusPair run_pair(const std::string& app,
                          double duration_s = 140.0) {
  const service::ScenarioRegistry& registry = service::standard_registry();
  NexusPair pair;
  sim::NexusResult* out[2] = {&pair.without_throttling,
                              &pair.with_throttling};
  sim::parallel_for_index(2, 2, [&](std::size_t i) {
    service::SimRequest req;
    req.scenario = "nexus";
    req.app = app;
    req.policy = i == 1 ? "throttled" : "unthrottled";
    req.duration_s = duration_s;
    std::unique_ptr<sim::Engine> engine = registry.make_engine(req);
    engine->run(duration_s);
    *out[i] = sim::nexus_result_from(*engine);
  });
  return pair;
}

/// Figs. 1/3/5: package-temperature trace with and without throttling.
inline void temperature_figure(const std::string& figure,
                               const std::string& app,
                               double paper_peak_without_c,
                               double paper_peak_with_c) {
  const std::string display = service::workload_by_name(app).name;
  header(figure, "temperature profile for " + display +
                     " (with vs. without throttling)");
  const NexusPair pair = run_pair(app);

  std::vector<std::vector<double>> rows;
  const auto& off = pair.without_throttling.temp_trace_c;
  const auto& on = pair.with_throttling.temp_trace_c;
  for (std::size_t i = 0; i < off.size() && i < on.size(); ++i) {
    rows.push_back({off[i].first, off[i].second, on[i].second});
  }
  series_block("temperature trace (plot this to regenerate the figure)",
               {"time_s", "without_throttling_c", "with_throttling_c"}, rows);

  std::printf("\n");
  paper_vs_measured("peak temperature, throttling disabled",
                    paper_peak_without_c,
                    pair.without_throttling.peak_temp_c, "degC");
  paper_vs_measured("peak temperature, throttling enabled",
                    paper_peak_with_c, pair.with_throttling.peak_temp_c,
                    "degC");
}

/// Figs. 2/4/6: frequency-residency histograms for one cluster.
inline void residency_figure(const std::string& figure,
                             const std::string& app, bool gpu_cluster,
                             const std::string& cluster_label) {
  const std::string display = service::workload_by_name(app).name;
  header(figure, cluster_label + " frequency residency for " + display);
  const NexusPair pair = run_pair(app);

  const auto& freqs = gpu_cluster ? pair.without_throttling.gpu_freqs_mhz
                                  : pair.without_throttling.big_freqs_mhz;
  const auto& res_off = gpu_cluster ? pair.without_throttling.gpu_residency
                                    : pair.without_throttling.big_residency;
  const auto& res_on = gpu_cluster ? pair.with_throttling.gpu_residency
                                   : pair.with_throttling.big_residency;
  residency_block("without throttling", freqs, res_off);
  residency_block("with throttling", freqs, res_on);

  // Shape check the paper emphasizes: the top OPPs lose their share under
  // throttling.
  double top2_off = 0.0;
  double top2_on = 0.0;
  for (std::size_t i = freqs.size() >= 2 ? freqs.size() - 2 : 0;
       i < freqs.size(); ++i) {
    top2_off += res_off[i];
    top2_on += res_on[i];
  }
  std::printf("\ntop-two-OPP share: %.1f%% -> %.1f%% under throttling\n",
              100.0 * top2_off, 100.0 * top2_on);
}

}  // namespace mobitherm::bench
